// Conformance suite for the runtime seam: the contract runtime/runtime.h
// documents, pinned against BOTH backends — the deterministic sim kernel and
// the real event loop — through the same test bodies. If a backend drifts
// (timer ordering, cancellation semantics, storage prefix durability), it
// fails here before any protocol-level symptom appears.
//
// The real-only tests at the bottom exercise what the sim cannot: actual
// threads, actual loopback UDP, actual loss — and check that the transport's
// retransmission/dedup machinery delivers reliable payloads exactly once
// across an injected-drop conduit.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "obs/metrics.h"
#include "proto/packet_codec.h"
#include "proto/wire.h"
#include "runtime/real.h"
#include "runtime/runtime.h"
#include "sim/kernel.h"
#include "wal/record.h"
#include "wal/stable_storage.h"

namespace dvp {
namespace {

enum class Backend { kSim, kReal };

std::string BackendName(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Real";
}

/// Offsets used by the timer tests: far enough apart that the real loop
/// (poll granularity ~1 ms) orders them robustly, small enough that the
/// whole suite stays fast.
constexpr SimTime kTickUs = 20'000;

class RuntimeConformanceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Backend::kSim) {
      kernel_ = std::make_unique<sim::Kernel>();
    } else {
      loop_ = std::make_unique<runtime::EventLoop>(
          runtime::EventLoop::Clock::now(), "conformance");
      loop_->Start();
    }
  }

  void TearDown() override {
    if (loop_) loop_->Stop();
  }

  runtime::Runtime& rt() {
    return kernel_ ? static_cast<runtime::Runtime&>(*kernel_)
                   : static_cast<runtime::Runtime&>(*loop_);
  }

  /// Advances the backend until `pred` holds or `max_us` of backend time
  /// passes. Sim: steps the kernel. Real: sleeps while the loop thread works.
  bool WaitUntil(const std::function<bool()>& pred, SimTime max_us) {
    if (kernel_) {
      SimTime deadline = kernel_->Now() + max_us;
      while (!pred()) {
        if (kernel_->NextEventTime() > deadline) return pred();
        if (!kernel_->Step()) return pred();
      }
      return true;
    }
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(max_us);
    while (!pred()) {
      if (std::chrono::steady_clock::now() >= deadline) return pred();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
  }

  std::unique_ptr<sim::Kernel> kernel_;
  std::unique_ptr<runtime::EventLoop> loop_;
};

TEST_P(RuntimeConformanceTest, NowIsMonotone) {
  SimTime a = rt().Now();
  SimTime b = rt().Now();
  EXPECT_LE(a, b);
}

TEST_P(RuntimeConformanceTest, TimersFireInDeadlineOrderWithFifoTies) {
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int i) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(i);
  };
  std::atomic<int> fired{0};
  SimTime base = rt().Now();
  // Scheduled out of deadline order; 3, 4, 5 share one deadline and must
  // fire in schedule order (the FIFO tie-break both backends promise).
  rt().ScheduleAt(base + 3 * kTickUs, [&] { record(6); ++fired; });
  rt().ScheduleAt(base + 1 * kTickUs, [&] { record(0); ++fired; });
  rt().ScheduleAt(base + 2 * kTickUs, [&] { record(3); ++fired; });
  rt().ScheduleAt(base + 2 * kTickUs, [&] { record(4); ++fired; });
  rt().ScheduleAt(base + 2 * kTickUs, [&] { record(5); ++fired; });
  rt().ScheduleAt(base + 1 * kTickUs + 1, [&] { record(1); ++fired; });
  rt().ScheduleAt(base + 1 * kTickUs + 2, [&] { record(2); ++fired; });
  ASSERT_TRUE(WaitUntil([&] { return fired.load() == 7; }, 10 * kTickUs));
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST_P(RuntimeConformanceTest, CancelPreventsFiring) {
  std::atomic<bool> doomed_fired{false};
  std::atomic<bool> sentinel_fired{false};
  runtime::TimerHandle doomed =
      rt().Schedule(kTickUs, [&] { doomed_fired = true; });
  doomed.Cancel();
  EXPECT_TRUE(doomed.cancelled());
  rt().Schedule(2 * kTickUs, [&] { sentinel_fired = true; });
  ASSERT_TRUE(WaitUntil([&] { return sentinel_fired.load(); }, 10 * kTickUs));
  EXPECT_FALSE(doomed_fired.load());
}

TEST_P(RuntimeConformanceTest, CancelAfterFireIsHarmlessAndIdempotent) {
  std::atomic<int> fired{0};
  runtime::TimerHandle h = rt().Schedule(kTickUs / 2, [&] { ++fired; });
  ASSERT_TRUE(WaitUntil([&] { return fired.load() == 1; }, 10 * kTickUs));
  h.Cancel();
  h.Cancel();  // idempotent
  std::atomic<bool> sentinel{false};
  rt().Schedule(kTickUs, [&] { sentinel = true; });
  ASSERT_TRUE(WaitUntil([&] { return sentinel.load(); }, 10 * kTickUs));
  EXPECT_EQ(fired.load(), 1);
}

TEST_P(RuntimeConformanceTest, CancelFromCallbackSuppressesPendingTimers) {
  std::atomic<bool> same_tick_fired{false};
  std::atomic<bool> later_fired{false};
  std::atomic<bool> done{false};
  SimTime base = rt().Now();
  runtime::TimerHandle same_tick;
  runtime::TimerHandle later;
  // The first timer at `base + tick` cancels a timer sharing its own
  // deadline (already due, not yet run) and one strictly later — neither
  // may fire. This is the ack-timer-superseded-by-piggyback pattern.
  rt().ScheduleAt(base + kTickUs, [&] {
    same_tick.Cancel();
    later.Cancel();
  });
  same_tick = rt().ScheduleAt(base + kTickUs, [&] { same_tick_fired = true; });
  later = rt().ScheduleAt(base + 2 * kTickUs, [&] { later_fired = true; });
  rt().ScheduleAt(base + 3 * kTickUs, [&] { done = true; });
  ASSERT_TRUE(WaitUntil([&] { return done.load(); }, 10 * kTickUs));
  EXPECT_FALSE(same_tick_fired.load());
  EXPECT_FALSE(later_fired.load());
}

TEST_P(RuntimeConformanceTest, HandlesOutliveTheRuntime) {
  runtime::TimerHandle survivor;
  {
    auto scratch = std::make_unique<sim::Kernel>();
    runtime::Runtime& scratch_rt = *scratch;
    survivor = scratch_rt.Schedule(kTickUs, [] {});
  }  // runtime destroyed with the timer still queued
  survivor.Cancel();  // must not touch freed memory (ASan-visible if it did)
  EXPECT_TRUE(survivor.cancelled());
}

// Storage prefix semantics, driven from the backend's own execution context
// (a timer callback — i.e. the loop thread on the real backend): everything
// appended-buffered after the last force dies with a crash, everything
// before it survives. GroupCommitLog's correctness rests on exactly this.
TEST_P(RuntimeConformanceTest, StorageForceThenCrashKeepsDurablePrefix) {
  wal::StableStorage storage((SiteId(0)));
  std::atomic<int> stage{0};
  rt().Schedule(kTickUs / 4, [&] {
    wal::LogRecord rec = wal::TxnAppliedRec{TxnId(1)};
    storage.Append(rec);          // forced: durable
    storage.AppendBuffered(rec);  // tail: volatile
    storage.AppendBuffered(rec);
    stage = 1;
  });
  ASSERT_TRUE(WaitUntil([&] { return stage.load() == 1; }, 10 * kTickUs));
  EXPECT_EQ(storage.log_size(), 3u);
  EXPECT_EQ(storage.durable_size(), 1u);

  rt().Schedule(kTickUs / 4, [&] {
    storage.ForceTail();  // closes the gap
    storage.AppendBuffered(wal::LogRecord{wal::TxnAppliedRec{TxnId(2)}});
    stage = 2;
  });
  ASSERT_TRUE(WaitUntil([&] { return stage.load() == 2; }, 10 * kTickUs));
  EXPECT_EQ(storage.durable_size(), 3u);
  EXPECT_EQ(storage.unforced_records(), 1u);

  uint64_t dropped = storage.DropUnforcedTail();  // the crash
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(storage.log_size(), 3u);
  EXPECT_EQ(storage.durable_size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Backends, RuntimeConformanceTest,
                         ::testing::Values(Backend::kSim, Backend::kReal),
                         BackendName);

// ---- Real-runtime-only: the transport over actual lossy UDP ----------------

/// Parameterized over the conduit's two wire paths: the single-shot
/// sendto/recv fallback and the fast path (encode-once frame cache plus
/// batched sendmmsg/recvmmsg). Exactly-once delivery under injected loss
/// must hold identically in both — the fast path is an optimization of the
/// wire, never of the semantics.
class RealTransportIoModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(RealTransportIoModeTest, ReliableSendsDeliverExactlyOnceUnderUdpDrops) {
  const bool fast_path = GetParam();
  constexpr uint32_t kMessages = 40;
  runtime::Real::Options opts;
  opts.net.drop_one_in = 3;  // every third datagram vanishes before the wire
  opts.net.batch_io = fast_path;
  opts.net.frame_cache = fast_path;
  runtime::Real real(2, opts);

  obs::MetricsRegistry metrics0, metrics1;
  net::Transport::Options topts;
  topts.rto_us = 20'000;  // retransmit fast so the test settles quickly
  topts.rto_max_us = 100'000;
  net::Transport t0(&real.loop(SiteId(0)), &real.conduit(), SiteId(0),
                    &metrics0, topts);
  net::Transport t1(&real.loop(SiteId(1)), &real.conduit(), SiteId(1),
                    &metrics1, topts);

  std::mutex mu;
  std::vector<uint64_t> delivered;  // vm ids in delivery order
  t1.set_deliver_fn([&](SiteId from, net::EnvelopePtr payload) {
    EXPECT_EQ(from, SiteId(0));
    auto* ack = static_cast<const proto::VmAckMsg*>(payload.get());
    std::lock_guard<std::mutex> lock(mu);
    delivered.push_back(ack->vm.value());
    return true;
  });
  t0.set_deliver_fn([](SiteId, net::EnvelopePtr) { return true; });

  std::atomic<uint32_t> acked{0};
  t0.set_ack_fn([&](uint64_t) { acked.fetch_add(1); });

  real.conduit().RegisterEndpoint(
      SiteId(0), [&t0](const net::Packet& p) { t0.OnPacket(p); },
      [] { return true; });
  real.conduit().RegisterEndpoint(
      SiteId(1), [&t1](const net::Packet& p) { t1.OnPacket(p); },
      [] { return true; });
  real.Start();

  // All sends from site 0's loop thread — the transport is single-threaded
  // per site by design, exactly like every other protocol component.
  for (uint32_t i = 0; i < kMessages; ++i) {
    real.loop(SiteId(0)).Post([&t0, i] {
      auto msg = net::MakeEnvelope<proto::VmAckMsg>();
      msg->vm = VmId(i);
      msg->from = SiteId(0);
      t0.SendReliable(SiteId(1), /*token=*/i, std::move(msg));
    });
  }

  // Settled = every payload acked back to the sender (so retransmission
  // stopped), not merely delivered.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (acked.load() < kMessages &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  uint64_t outstanding = 1;
  real.RunOn(SiteId(0), [&] { outstanding = t0.outstanding(); });
  real.Stop();

  EXPECT_EQ(acked.load(), kMessages);
  EXPECT_EQ(outstanding, 0u);
  // Exactly once: all messages present, none twice, despite ~1/3 loss.
  std::set<uint64_t> unique(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered.size(), kMessages);
  EXPECT_EQ(unique.size(), kMessages);
  for (uint32_t i = 0; i < kMessages; ++i) EXPECT_TRUE(unique.count(i));
  // The drop injector actually bit: some datagrams were eaten, and the
  // transport visibly retransmitted around them.
  EXPECT_GT(real.conduit().stats().datagrams_dropped_injected, 0u);
  EXPECT_GT(t0.retransmissions(), 0u);
  if (fast_path) {
    // Encode-once bookkeeping: every retransmission either replayed its
    // cached bytes or re-encoded only after a counted invalidation.
    EXPECT_LE(real.conduit().stats().frame_cache_hits +
                  t0.frame_cache_invalidations() +
                  t1.frame_cache_invalidations(),
              t0.retransmissions() + t1.retransmissions());
  } else {
    // The baseline path never touches the cache machinery.
    EXPECT_EQ(real.conduit().stats().frame_cache_hits, 0u);
    EXPECT_EQ(t0.frame_cache_invalidations(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(IoModes, RealTransportIoModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("FastPath")
                                             : std::string("SingleShot");
                         });

// The packet byte codec round-trips the wire shapes the conduit ships. (The
// fuzz suite hammers the decoder; this pins the happy path end to end.)
TEST(PacketCodecTest, RoundTripsACoalescedFrameWithAcksAndHints) {
  net::Packet p;
  p.src = SiteId(2);
  p.dst = SiteId(0);
  p.reliability = net::Reliability::kReliable;
  p.epoch = 7;
  p.seq = MsgSeq(41);
  p.seq_base = 40;
  p.has_ack = true;
  p.ack_epoch = 3;
  p.ack_cum = 99;
  p.trace_id = 1234;
  p.hints.push_back(net::PlacementHint{ItemId(5), 100, -20, 77});
  auto transfer = net::MakeEnvelope<proto::VmTransferMsg>();
  transfer->vm = VmId(9000);
  transfer->src = SiteId(2);
  transfer->item = ItemId(5);
  transfer->amount = -12;
  transfer->for_txn = TxnId(55);
  transfer->ts_packed = 424242;
  transfer->closed_below = 8999;
  transfer->trace_id = 1234;
  p.payload = std::move(transfer);
  auto rider = net::MakeEnvelope<proto::CcNackMsg>();
  rider->from = SiteId(2);
  rider->ts_packed = 31337;
  p.extra.push_back(
      net::SubMsg{net::Reliability::kDatagram, MsgSeq(0), std::move(rider)});

  std::string frame = proto::EncodePacket(p);
  StatusOr<net::Packet> rt = proto::DecodePacket(frame);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt->src, p.src);
  EXPECT_EQ(rt->dst, p.dst);
  EXPECT_EQ(rt->reliability, net::Reliability::kReliable);
  EXPECT_EQ(rt->epoch, 7u);
  EXPECT_EQ(rt->seq, MsgSeq(41));
  EXPECT_EQ(rt->seq_base, 40u);
  EXPECT_TRUE(rt->has_ack);
  EXPECT_EQ(rt->ack_cum, 99u);
  EXPECT_EQ(rt->trace_id, 1234u);
  ASSERT_EQ(rt->hints.size(), 1u);
  EXPECT_EQ(rt->hints[0].surplus, 100);
  EXPECT_EQ(rt->hints[0].demand, -20);
  ASSERT_TRUE(rt->payload);
  auto* out = static_cast<const proto::VmTransferMsg*>(rt->payload.get());
  EXPECT_EQ(out->vm, VmId(9000));
  EXPECT_EQ(out->amount, -12);
  EXPECT_EQ(out->closed_below, 8999u);
  EXPECT_EQ(out->trace_id, 1234u);
  ASSERT_EQ(rt->extra.size(), 1u);
  auto* nack = static_cast<const proto::CcNackMsg*>(rt->extra[0].payload.get());
  EXPECT_EQ(nack->ts_packed, 31337u);

  // Defensive decode: flip a byte anywhere and the checksum rejects it.
  std::string corrupt = frame;
  corrupt[frame.size() / 2] ^= 0x40;
  EXPECT_FALSE(proto::DecodePacket(corrupt).ok());
  EXPECT_FALSE(proto::DecodePacket(std::string_view(frame).substr(0, 3)).ok());
}

}  // namespace
}  // namespace dvp
