// Unit tests for the network substrate: partition oracle, link fault model,
// routing semantics, broadcast ordering, transport retransmission.
#include <gtest/gtest.h>

#include <vector>

#include "net/backoff.h"
#include "net/network.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "proto/packet_codec.h"
#include "proto/wire.h"
#include "sim/kernel.h"

namespace dvp::net {
namespace {

struct TestMsg final : public Envelope {
  explicit TestMsg(int v) : value(v) {}
  int value;
  std::string_view Tag() const override { return "Test"; }
};

// ---- PartitionOracle ---------------------------------------------------------

TEST(PartitionOracleTest, StartsFullyConnected) {
  PartitionOracle oracle(4);
  EXPECT_FALSE(oracle.IsPartitioned());
  EXPECT_EQ(oracle.num_groups(), 1u);
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = 0; b < 4; ++b) {
      EXPECT_TRUE(oracle.Connected(SiteId(a), SiteId(b)));
    }
  }
}

TEST(PartitionOracleTest, SplitSeparatesGroups) {
  PartitionOracle oracle(4);
  ASSERT_TRUE(oracle.Split({{SiteId(0), SiteId(1)}, {SiteId(2), SiteId(3)}})
                  .ok());
  EXPECT_TRUE(oracle.IsPartitioned());
  EXPECT_EQ(oracle.num_groups(), 2u);
  EXPECT_TRUE(oracle.Connected(SiteId(0), SiteId(1)));
  EXPECT_TRUE(oracle.Connected(SiteId(2), SiteId(3)));
  EXPECT_FALSE(oracle.Connected(SiteId(0), SiteId(2)));
  EXPECT_FALSE(oracle.Connected(SiteId(1), SiteId(3)));
}

TEST(PartitionOracleTest, SelfIsAlwaysConnected) {
  PartitionOracle oracle(2);
  ASSERT_TRUE(oracle.Split({{SiteId(0)}, {SiteId(1)}}).ok());
  EXPECT_TRUE(oracle.Connected(SiteId(0), SiteId(0)));
}

TEST(PartitionOracleTest, HealRestores) {
  PartitionOracle oracle(3);
  ASSERT_TRUE(oracle.Split({{SiteId(0)}, {SiteId(1), SiteId(2)}}).ok());
  uint64_t v = oracle.version();
  oracle.Heal();
  EXPECT_GT(oracle.version(), v);
  EXPECT_FALSE(oracle.IsPartitioned());
  EXPECT_TRUE(oracle.Connected(SiteId(0), SiteId(2)));
}

TEST(PartitionOracleTest, SplitValidatesCoverage) {
  PartitionOracle oracle(3);
  EXPECT_FALSE(oracle.Split({{SiteId(0)}, {SiteId(1)}}).ok());  // missing 2
  EXPECT_FALSE(
      oracle.Split({{SiteId(0), SiteId(0)}, {SiteId(1), SiteId(2)}}).ok());
  EXPECT_FALSE(oracle.Split({{SiteId(0), SiteId(7)}, {SiteId(1), SiteId(2)}})
                   .ok());  // out of range
}

TEST(PartitionOracleTest, IsolateCutsOneSite) {
  PartitionOracle oracle(4);
  ASSERT_TRUE(oracle.Isolate(SiteId(2)).ok());
  EXPECT_FALSE(oracle.Connected(SiteId(2), SiteId(0)));
  EXPECT_TRUE(oracle.Connected(SiteId(0), SiteId(1)));
  EXPECT_TRUE(oracle.Connected(SiteId(0), SiteId(3)));
}

TEST(PartitionOracleTest, ThreeWaySplit) {
  PartitionOracle oracle(4);
  ASSERT_TRUE(
      oracle.Split({{SiteId(0)}, {SiteId(1)}, {SiteId(2), SiteId(3)}}).ok());
  EXPECT_EQ(oracle.num_groups(), 3u);
  EXPECT_FALSE(oracle.Connected(SiteId(0), SiteId(1)));
  EXPECT_TRUE(oracle.Connected(SiteId(2), SiteId(3)));
}

// ---- Link ---------------------------------------------------------------------

TEST(LinkTest, SynchronousIsDeterministic) {
  Link link(LinkParams::Synchronous(500), Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(link.SampleLoss());
    EXPECT_FALSE(link.SampleDuplicate());
    EXPECT_EQ(link.SampleDelay(), 500);
  }
}

TEST(LinkTest, AlwaysLossyDropsEverything) {
  LinkParams p;
  p.loss_prob = 1.0;
  Link link(p, Rng(2));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(link.SampleLoss());
}

TEST(LinkTest, JitterAddsToBaseDelay) {
  LinkParams p;
  p.base_delay_us = 100;
  p.jitter_mean_us = 50;
  Link link(p, Rng(3));
  for (int i = 0; i < 100; ++i) EXPECT_GE(link.SampleDelay(), 100);
}

// ---- Network --------------------------------------------------------------------

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : network_(&kernel_, 3, LinkParams::Synchronous(1000), Rng(5)) {
    for (uint32_t s = 0; s < 3; ++s) {
      network_.RegisterEndpoint(
          SiteId(s),
          [this, s](const Packet& p) {
            received_[s].push_back(
                static_cast<const TestMsg*>(p.payload.get())->value);
          },
          [this, s]() { return up_[s]; });
    }
  }

  void Send(uint32_t from, uint32_t to, int value) {
    Packet p;
    p.src = SiteId(from);
    p.dst = SiteId(to);
    p.payload = std::make_shared<TestMsg>(value);
    network_.Send(std::move(p));
  }

  sim::Kernel kernel_;
  Network network_;
  std::vector<int> received_[3];
  bool up_[3] = {true, true, true};
};

TEST_F(NetworkTest, DeliversAfterLinkDelay) {
  Send(0, 1, 42);
  EXPECT_TRUE(received_[1].empty());
  kernel_.Run();
  EXPECT_EQ(received_[1], (std::vector<int>{42}));
  EXPECT_EQ(kernel_.Now(), 1000);
}

TEST_F(NetworkTest, LoopbackIsImmediate) {
  Send(2, 2, 9);
  kernel_.Run();
  EXPECT_EQ(received_[2], (std::vector<int>{9}));
  EXPECT_EQ(kernel_.Now(), 0);
}

TEST_F(NetworkTest, DropsAcrossPartition) {
  ASSERT_TRUE(
      network_.partition().Split({{SiteId(0)}, {SiteId(1), SiteId(2)}}).ok());
  Send(0, 1, 1);
  kernel_.Run();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(network_.stats().packets_lost_partition, 1u);
}

TEST_F(NetworkTest, InFlightPacketDiesWhenPartitionStrikes) {
  Send(0, 1, 7);  // arrives at t=1000
  kernel_.Schedule(500, [this]() {
    ASSERT_TRUE(network_.partition()
                    .Split({{SiteId(0)}, {SiteId(1), SiteId(2)}})
                    .ok());
  });
  kernel_.Run();
  EXPECT_TRUE(received_[1].empty());
}

TEST_F(NetworkTest, HealedInFlightStillDelivered) {
  ASSERT_TRUE(
      network_.partition().Split({{SiteId(0)}, {SiteId(1), SiteId(2)}}).ok());
  network_.partition().Heal();
  Send(0, 1, 5);
  kernel_.Run();
  EXPECT_EQ(received_[1], (std::vector<int>{5}));
}

TEST_F(NetworkTest, DownDestinationLosesPacket) {
  up_[1] = false;
  Send(0, 1, 3);
  kernel_.Run();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(network_.stats().packets_lost_down, 1u);
}

TEST_F(NetworkTest, BroadcastReachesAllOthersSimultaneously) {
  network_.Broadcast(SiteId(0), std::make_shared<TestMsg>(11));
  kernel_.Run();
  EXPECT_EQ(received_[1], (std::vector<int>{11}));
  EXPECT_EQ(received_[2], (std::vector<int>{11}));
  EXPECT_TRUE(received_[0].empty());
}

TEST_F(NetworkTest, BroadcastsFromTwoSitesArriveInSameOrderEverywhere) {
  // Order-synchronous property required by Conc2 (§6.2).
  network_.Broadcast(SiteId(0), std::make_shared<TestMsg>(100));
  network_.Broadcast(SiteId(1), std::make_shared<TestMsg>(200));
  kernel_.Run();
  EXPECT_EQ(received_[2], (std::vector<int>{100, 200}));
}

TEST_F(NetworkTest, FullyLossyLinkDropsAll) {
  LinkParams lossy;
  lossy.loss_prob = 1.0;
  network_.SetLinkParams(SiteId(0), SiteId(1), lossy);
  for (int i = 0; i < 10; ++i) Send(0, 1, i);
  kernel_.Run();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(network_.stats().packets_lost_link, 10u);
  // The reverse direction is unaffected.
  Send(1, 0, 1);
  kernel_.Run();
  EXPECT_EQ(received_[0].size(), 1u);
}

TEST_F(NetworkTest, DuplicationDeliversTwice) {
  LinkParams dupl;
  dupl.duplicate_prob = 1.0;
  dupl.jitter_mean_us = 0;
  network_.SetLinkParams(SiteId(0), SiteId(1), dupl);
  Send(0, 1, 8);
  kernel_.Run();
  EXPECT_EQ(received_[1].size(), 2u);
  EXPECT_EQ(network_.stats().packets_duplicated, 1u);
}

// ---- Modeled byte accounting -------------------------------------------------

TEST(WireBytesTest, SumsHeaderAckHintsPayloadAndRiders) {
  Packet p;
  p.src = SiteId(0);
  p.dst = SiteId(1);
  EXPECT_EQ(WireBytes(p), kPacketHeaderBytes);  // pure header, no payload
  p.payload = std::make_shared<TestMsg>(1);     // default envelope size
  EXPECT_EQ(WireBytes(p), kPacketHeaderBytes + kEnvelopeHeaderBytes);
  p.has_ack = true;
  p.hints.resize(2);
  SubMsg rider;
  rider.payload = std::make_shared<TestMsg>(2);
  p.extra.push_back(rider);
  EXPECT_EQ(WireBytes(p), kPacketHeaderBytes + kAckBytes + 2 * kHintBytes +
                              kEnvelopeHeaderBytes + kSubMsgHeaderBytes +
                              kEnvelopeHeaderBytes);
}

// The multi-op flag rides bit 1 of the SAME flags byte as want_surplus_nack
// (bit 0). The frame layout — and therefore every modeled byte the ledger
// charges — must be identical no matter which flag combination is set: a
// request's cost is header + 25 fixed + 13 per part, nothing else.
TEST(WireBytesTest, RequestFlagsShareOneByteAndNeverChangeTheSize) {
  const size_t fixed = kEnvelopeHeaderBytes + 8 + 8 + 4 + 4 + 1;
  for (bool surplus : {false, true}) {
    for (bool atomic : {false, true}) {
      for (size_t parts : {size_t{0}, size_t{1}, size_t{2}, size_t{5}}) {
        proto::RequestMsg msg;
        msg.txn = TxnId(7);
        msg.ts_packed = 99;
        msg.origin = SiteId(0);
        msg.want_surplus_nack = surplus;
        msg.atomic_set = atomic;
        msg.parts.resize(parts);
        EXPECT_EQ(msg.EncodedSize(), fixed + parts * 13)
            << "surplus=" << surplus << " atomic=" << atomic
            << " parts=" << parts;
      }
    }
  }
}

// A legacy single-item frame (no flags) costs today exactly what it cost
// before the atomic-set bit existed — byte-ledger regressions in E12/E13
// would otherwise masquerade as protocol traffic changes.
TEST(WireBytesTest, LegacyRequestFrameCostIsPinned) {
  proto::RequestMsg msg;
  msg.txn = TxnId(1);
  msg.parts.resize(1);
  EXPECT_EQ(msg.EncodedSize(), kEnvelopeHeaderBytes + 25 + 13);

  Packet p;
  p.src = SiteId(0);
  p.dst = SiteId(1);
  p.payload = std::make_shared<proto::RequestMsg>(msg);
  EXPECT_EQ(WireBytes(p), kPacketHeaderBytes + kEnvelopeHeaderBytes + 38);
}

// The snapshot-read messages' modeled wire cost is pinned the same way: a
// request is header + 24 fixed + 4 per item, a reply header + 24 fixed + 60
// per stamped entry. E5b's byte ledger is built on these figures.
TEST(WireBytesTest, SnapshotFrameCostsArePinned) {
  proto::SnapshotReqMsg req;
  req.txn = TxnId(7);
  EXPECT_EQ(req.EncodedSize(), kEnvelopeHeaderBytes + 24);
  req.items.resize(3);
  EXPECT_EQ(req.EncodedSize(), kEnvelopeHeaderBytes + 24 + 3 * 4);

  proto::SnapshotReplyMsg reply;
  reply.txn = TxnId(7);
  EXPECT_EQ(reply.EncodedSize(), kEnvelopeHeaderBytes + 24);
  reply.entries.resize(2);
  EXPECT_EQ(reply.EncodedSize(), kEnvelopeHeaderBytes + 24 + 2 * 60);
}

// The shared backoff arithmetic is pinned: the transport's retransmission
// schedule and the read paths' retry pacing both ride these exact values,
// and the jitter must be a pure function of its salt (no RNG stream).
TEST(BackoffTest, IntervalDoublesAndCollapsesToTheCap) {
  EXPECT_EQ(backoff::Interval(10'000, 320'000, 0), 10'000);
  EXPECT_EQ(backoff::Interval(10'000, 320'000, 1), 20'000);
  EXPECT_EQ(backoff::Interval(10'000, 320'000, 5), 320'000);
  EXPECT_EQ(backoff::Interval(10'000, 320'000, 6), 320'000);   // past cap
  EXPECT_EQ(backoff::Interval(10'000, 320'000, 63), 320'000);  // clamped exp
  EXPECT_EQ(backoff::Interval(1, 2'000'000'000, 30), 1 << 30);
}

// Regression: the old probe computed `base_us << exp` before its overflow
// guard — a signed left shift that overflows (UB, caught by UBSan) for large
// bases. The pre-shift test must collapse these straight to the cap.
TEST(BackoffTest, IntervalHugeBaseCollapsesToCapWithoutOverflow) {
  EXPECT_EQ(backoff::Interval(int64_t{1} << 40, 1'000'000, 30), 1'000'000);
  EXPECT_EQ(backoff::Interval(int64_t{1} << 62, 320'000, 5), 320'000);
  EXPECT_EQ(backoff::Interval(kSimTimeMax, kSimTimeMax, 1), kSimTimeMax);
  // Degenerate inputs still collapse to the cap (the old `<= 0` guard).
  EXPECT_EQ(backoff::Interval(0, 320'000, 5), 320'000);
  EXPECT_EQ(backoff::Interval(-10, 320'000, 0), 320'000);
}

TEST(BackoffTest, JitterIsDeterministicAndBounded) {
  constexpr SimTime kMax = 10'000'000;
  for (SimTime interval : {SimTime{4}, SimTime{10'000}, SimTime{320'000}}) {
    for (uint64_t salt = 0; salt < 64; ++salt) {
      SimTime a = backoff::Jittered(interval, kMax, salt);
      SimTime b = backoff::Jittered(interval, kMax, salt);
      EXPECT_EQ(a, b);  // pure function of (interval, max, salt)
      EXPECT_GE(a, interval);
      EXPECT_LE(a, interval + interval / 4);
    }
  }
  // Distinct salts actually spread (the anti-thundering-herd point).
  EXPECT_NE(backoff::Jittered(320'000, kMax, 1),
            backoff::Jittered(320'000, kMax, 2));
}

// Regression: jitter on top of an already-capped interval used to stretch
// the wait to 1.25 * max_us. A maxed-out retrier now waits exactly the cap.
TEST(BackoffTest, JitterNeverExceedsTheCap) {
  for (uint64_t salt = 0; salt < 64; ++salt) {
    EXPECT_EQ(backoff::Jittered(320'000, 320'000, salt), 320'000);
    EXPECT_LE(backoff::Jittered(300'000, 320'000, salt), 320'000);
  }
}

// WireSize is computed once and cached; flipping a flag afterwards must not
// re-cost the envelope (payloads are immutable once sent — the cache is the
// contract that retransmissions and duplicates charge the original figure).
TEST(WireBytesTest, WireSizeIsCachedAtFirstUse) {
  proto::RequestMsg msg;
  msg.parts.resize(2);
  const size_t first = msg.WireSize();
  msg.parts.resize(5);  // mutation after first costing: cache must hold
  EXPECT_EQ(msg.WireSize(), first);
}

TEST_F(NetworkTest, ByteCountersFollowPacketCounters) {
  Send(0, 1, 1);
  Send(1, 2, 2);
  kernel_.Run();
  constexpr uint64_t kPerPacket = kPacketHeaderBytes + kEnvelopeHeaderBytes;
  EXPECT_EQ(network_.stats().bytes_sent, 2 * kPerPacket);
  EXPECT_EQ(network_.stats().bytes_delivered, 2 * kPerPacket);
}

TEST_F(NetworkTest, DuplicateChargesDeliveredBytesNotSentBytes) {
  // Mirrors packets_sent / packets_delivered: the sender paid for one send,
  // the link manufactured the second copy, the receiver absorbed both.
  LinkParams dupl;
  dupl.duplicate_prob = 1.0;
  dupl.jitter_mean_us = 0;
  network_.SetLinkParams(SiteId(0), SiteId(1), dupl);
  Send(0, 1, 8);
  kernel_.Run();
  constexpr uint64_t kPerPacket = kPacketHeaderBytes + kEnvelopeHeaderBytes;
  EXPECT_EQ(network_.stats().bytes_sent, kPerPacket);
  EXPECT_EQ(network_.stats().bytes_delivered, 2 * kPerPacket);
}

TEST(EnvelopePoolTest, MakeEnvelopeCountsAndRecycles) {
  EnvelopePoolStats before = PoolStats();
  for (int i = 0; i < 100; ++i) {
    auto e = MakeEnvelope<TestMsg>(i);
    EXPECT_EQ(e->value, i);
  }  // each envelope dies here and its block returns to the pool
  EnvelopePoolStats after = PoolStats();
  EXPECT_EQ(after.envelopes - before.envelopes, 100u);
  // Recycling is the point: 100 sequential alloc/free cycles must not cost
  // anywhere near 100 heap trips.
  EXPECT_LT(after.upstream_allocations - before.upstream_allocations, 10u);
}

// ---- Transport -------------------------------------------------------------------

class TransportTest : public ::testing::Test {
 protected:
  TransportTest() { Build(LinkParams::Synchronous(1000)); }

  void Build(LinkParams link, bool coalesce = false,
             uint32_t max_frame_msgs = 8) {
    network_ = std::make_unique<Network>(&kernel_, 2, link, Rng(6));
    Transport::Options opts;
    opts.rto_us = 10'000;
    opts.ack_delay_us = 2'000;
    opts.coalesce = coalesce;
    opts.max_frame_msgs = max_frame_msgs;
    for (uint32_t s = 0; s < 2; ++s) {
      transport_[s] = std::make_unique<Transport>(&kernel_, network_.get(),
                                                  SiteId(s), &counters_[s],
                                                  opts);
      Transport* t = transport_[s].get();
      network_->RegisterEndpoint(
          SiteId(s),
          [this, s, t](const Packet& p) {
            if (p.payload && p.reliability == Reliability::kReliable) {
              wire_seqs_[s].push_back(p.seq.value());
            }
            t->OnPacket(p);
          },
          []() { return true; });
      transport_[s]->set_deliver_fn([this, s](SiteId, EnvelopePtr payload) {
        received_[s].push_back(
            static_cast<const TestMsg*>(payload.get())->value);
        return consume_[s];
      });
      transport_[s]->set_ack_fn(
          [this, s](uint64_t token) { acked_[s].push_back(token); });
    }
  }

  sim::Kernel kernel_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<Transport> transport_[2];
  obs::MetricsRegistry counters_[2];
  std::vector<int> received_[2];
  std::vector<uint64_t> wire_seqs_[2];  // reliable seqs seen on the wire
  std::vector<uint64_t> acked_[2];      // tokens completed by cumulative ack
  bool consume_[2] = {true, true};
};

TEST_F(TransportTest, DatagramDelivers) {
  transport_[0]->SendDatagram(SiteId(1), std::make_shared<TestMsg>(1));
  kernel_.Run();
  EXPECT_EQ(received_[1], (std::vector<int>{1}));
}

TEST_F(TransportTest, CumulativeAckStopsRetransmissionAndCompletesToken) {
  transport_[0]->SendReliable(SiteId(1), 77, std::make_shared<TestMsg>(2));
  EXPECT_EQ(transport_[0]->outstanding(), 1u);
  kernel_.Run(100'000);
  // Consumed on first delivery; the delayed pure ack (no reverse traffic)
  // completed the send before the first retransmission round.
  EXPECT_EQ(received_[1], (std::vector<int>{2}));
  EXPECT_EQ(transport_[0]->retransmissions(), 0u);
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
  EXPECT_EQ(acked_[0], (std::vector<uint64_t>{77}));
  EXPECT_EQ(transport_[1]->pure_acks(), 1u);
}

TEST_F(TransportTest, PiggybackAckOnReverseTrafficBeatsPureAck) {
  transport_[0]->SendReliable(SiteId(1), 4, std::make_shared<TestMsg>(2));
  // Reverse datagram leaves after delivery (t=1000) but before the pure-ack
  // delay (2000) expires; the ack rides it.
  kernel_.Schedule(1'500, [this]() {
    transport_[1]->SendDatagram(SiteId(0), std::make_shared<TestMsg>(9));
  });
  kernel_.Run(100'000);
  EXPECT_EQ(acked_[0], (std::vector<uint64_t>{4}));
  EXPECT_EQ(transport_[1]->pure_acks(), 0u);
  EXPECT_EQ(transport_[1]->piggyback_acks(), 1u);
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

TEST_F(TransportTest, ReliableRetransmitsUntilCancelled) {
  consume_[1] = false;  // receiver refuses: no ack, no dedup
  transport_[0]->SendReliable(SiteId(1), 77, std::make_shared<TestMsg>(2));
  kernel_.Run(60'000);  // several backoff rounds
  EXPECT_GE(received_[1].size(), 3u);  // original + >= 2 re-offers
  EXPECT_GE(transport_[0]->retransmissions(), 2u);
  transport_[0]->CancelReliable(77);
  size_t so_far = received_[1].size();
  kernel_.Run(kernel_.Now() + 200'000);
  EXPECT_EQ(received_[1].size(), so_far);  // silence after cancel
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

TEST_F(TransportTest, RetransmissionsReuseTheOriginalSeq) {
  consume_[1] = false;
  transport_[0]->SendReliable(SiteId(1), 8, std::make_shared<TestMsg>(3));
  kernel_.Run(80'000);
  ASSERT_GE(wire_seqs_[1].size(), 3u);
  for (uint64_t seq : wire_seqs_[1]) EXPECT_EQ(seq, wire_seqs_[1][0]);
  // Once the receiver consumes, exactly one more credit happens and the
  // duplicate window holds the rest.
  consume_[1] = true;
  size_t before = received_[1].size();
  kernel_.Run(kernel_.Now() + 2'000'000);
  EXPECT_EQ(received_[1].size(), before + 1);
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

TEST_F(TransportTest, DuplicateDroppedAtTransport) {
  LinkParams dupl = LinkParams::Synchronous(1000);
  dupl.duplicate_prob = 1.0;
  Build(dupl);
  transport_[0]->SendReliable(SiteId(1), 3, std::make_shared<TestMsg>(6));
  kernel_.Run(100'000);
  // Two copies hit the wire; the payload reached the upper layer once.
  EXPECT_EQ(received_[1], (std::vector<int>{6}));
  EXPECT_GE(transport_[1]->dup_drops(), 1u);
  EXPECT_GE(counters_[1].Get("transport.dup_drop"), 1u);
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

TEST_F(TransportTest, ReliableSurvivesTotalLossUntilHeal) {
  ASSERT_TRUE(network_->partition().Split({{SiteId(0)}, {SiteId(1)}}).ok());
  transport_[0]->SendReliable(SiteId(1), 5, std::make_shared<TestMsg>(3));
  kernel_.Run(50'000);
  EXPECT_TRUE(received_[1].empty());
  network_->partition().Heal();
  // Backoff may have stretched the retry interval; give it a few rounds.
  kernel_.Run(kernel_.Now() + 1'000'000);
  EXPECT_EQ(received_[1], (std::vector<int>{3}));
  EXPECT_EQ(transport_[0]->outstanding(), 0u);  // ack flowed back after heal
}

TEST_F(TransportTest, BackoffKillsRetransmissionStormDuringPartition) {
  ASSERT_TRUE(network_->partition().Split({{SiteId(0)}, {SiteId(1)}}).ok());
  for (uint64_t t = 0; t < 20; ++t) {
    transport_[0]->SendReliable(SiteId(1), 100 + t,
                                std::make_shared<TestMsg>(int(t)));
  }
  kernel_.Run(300'000);
  // A fixed-RTO transport re-fires every pending send each tick: 20 sends *
  // 30 ticks = 600 packets over this window. Exponential backoff with a
  // burst cap sends a handful of probe rounds instead.
  EXPECT_LE(transport_[0]->retransmissions(), 60u);
  EXPECT_GE(transport_[0]->retransmissions(), 8u);  // still probing
}

TEST_F(TransportTest, CrashClearsOutstanding) {
  transport_[0]->SendReliable(SiteId(1), 9, std::make_shared<TestMsg>(4));
  transport_[0]->Crash();
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
  size_t delivered_before = received_[1].size();
  kernel_.Run(100'000);
  // Only the single pre-crash send can arrive; no retransmissions.
  EXPECT_LE(received_[1].size() - delivered_before, 1u);
}

TEST_F(TransportTest, NewEpochResetsTheReceiverChannel) {
  transport_[0]->SendReliable(SiteId(1), 1, std::make_shared<TestMsg>(10));
  kernel_.Run(100'000);
  ASSERT_EQ(received_[1], (std::vector<int>{10}));

  // Reborn sender: fresh epoch, seq numbering restarts at 1. The receiver
  // must not mistake the new seq 1 for the old consumed seq 1.
  transport_[0]->Crash();
  transport_[0]->set_epoch(1);
  transport_[0]->SendReliable(SiteId(1), 2, std::make_shared<TestMsg>(11));
  kernel_.Run(kernel_.Now() + 100'000);
  EXPECT_EQ(received_[1], (std::vector<int>{10, 11}));
}

TEST_F(TransportTest, StaleEpochPacketsAreDropped) {
  // Receiver tracks epoch 1...
  transport_[0]->set_epoch(1);
  transport_[0]->SendReliable(SiteId(1), 1, std::make_shared<TestMsg>(20));
  kernel_.Run(100'000);
  ASSERT_EQ(received_[1].size(), 1u);
  // ...then a leftover packet from the sender's previous life limps in.
  Packet stale;
  stale.src = SiteId(0);
  stale.dst = SiteId(1);
  stale.reliability = Reliability::kReliable;
  stale.epoch = 0;
  stale.seq = MsgSeq(9);
  stale.payload = std::make_shared<TestMsg>(21);
  network_->Send(std::move(stale));
  kernel_.Run(kernel_.Now() + 100'000);
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(counters_[1].Get("transport.stale_epoch_drop"), 1u);
}

TEST_F(TransportTest, CancelUnknownTokenIsNoOp) {
  transport_[0]->CancelReliable(424242);  // no crash
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

// ---- Coalescing ------------------------------------------------------------
//
// With Options::coalesce on, sends stage per destination for one zero-delay
// event tick and ride a single frame: the first message is the Packet's
// primary, the rest go in Packet::extra. Channel state (epoch, seq_base,
// piggyback ack) is frame-wide; dedup and delivery remain per message.

TEST_F(TransportTest, CoalescedBurstToOnePeerRidesOneFrame) {
  Build(LinkParams::Synchronous(1000), /*coalesce=*/true);
  transport_[0]->SendDatagram(SiteId(1), std::make_shared<TestMsg>(1));
  transport_[0]->SendReliable(SiteId(1), 10, std::make_shared<TestMsg>(2));
  transport_[0]->SendReliable(SiteId(1), 11, std::make_shared<TestMsg>(3));
  EXPECT_EQ(network_->stats().packets_sent, 0u);  // staged, not yet on wire
  kernel_.Run(100'000);
  EXPECT_EQ(received_[1], (std::vector<int>{1, 2, 3}));  // send order kept
  EXPECT_EQ(transport_[0]->coalesced_frames(), 1u);
  EXPECT_EQ(transport_[0]->coalesced_riders(), 2u);
  EXPECT_EQ(acked_[0], (std::vector<uint64_t>{10, 11}));
  // Exactly one data frame plus the receiver's one delayed pure ack.
  EXPECT_EQ(network_->stats().packets_sent, 2u);
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

TEST_F(TransportTest, MaxFrameMsgsChunksTheBurst) {
  Build(LinkParams::Synchronous(1000), /*coalesce=*/true,
        /*max_frame_msgs=*/4);
  for (int i = 0; i < 10; ++i) {
    transport_[0]->SendDatagram(SiteId(1), std::make_shared<TestMsg>(i));
  }
  kernel_.Run();
  EXPECT_EQ(received_[1],
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(network_->stats().packets_sent, 3u);  // 4 + 4 + 2
  EXPECT_EQ(transport_[0]->coalesced_frames(), 3u);
  EXPECT_EQ(transport_[0]->coalesced_riders(), 7u);
}

TEST_F(TransportTest, DuplicatedFrameDedupsEverySubMessage) {
  LinkParams dupl = LinkParams::Synchronous(1000);
  dupl.duplicate_prob = 1.0;
  Build(dupl, /*coalesce=*/true);
  transport_[0]->SendReliable(SiteId(1), 20, std::make_shared<TestMsg>(2));
  transport_[0]->SendReliable(SiteId(1), 21, std::make_shared<TestMsg>(3));
  transport_[0]->SendReliable(SiteId(1), 22, std::make_shared<TestMsg>(4));
  kernel_.Run(100'000);
  // The duplicated frame re-offers all three subs; each is dropped by its
  // own seq, not by a frame-level filter.
  EXPECT_EQ(received_[1], (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(transport_[1]->dup_drops(), 3u);
  EXPECT_EQ(acked_[0], (std::vector<uint64_t>{20, 21, 22}));
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

TEST_F(TransportTest, RetransmissionRoundsCoalesceToo) {
  Build(LinkParams::Synchronous(1000), /*coalesce=*/true);
  consume_[1] = false;  // receiver refuses: every round re-offers the burst
  transport_[0]->SendReliable(SiteId(1), 30, std::make_shared<TestMsg>(5));
  transport_[0]->SendReliable(SiteId(1), 31, std::make_shared<TestMsg>(6));
  transport_[0]->SendReliable(SiteId(1), 32, std::make_shared<TestMsg>(7));
  kernel_.Run(60'000);  // several backoff rounds
  EXPECT_GE(transport_[0]->retransmissions(), 3u);
  // Every round (initial and retransmit alike) is one 3-message frame.
  EXPECT_GE(transport_[0]->coalesced_frames(), 2u);
  EXPECT_EQ(transport_[0]->coalesced_riders(),
            transport_[0]->coalesced_frames() * 2);
  EXPECT_EQ(received_[1].size(), transport_[0]->coalesced_frames() * 3);
}

// The satellite fix this PR pins: when reverse traffic (coalesced or not)
// carries the ack, the armed pure-ack timer is CANCELLED, not left to fire
// into its ack_owed re-check.
TEST_F(TransportTest, CoalescedReverseTrafficCancelsThePendingPureAck) {
  Build(LinkParams::Synchronous(1000), /*coalesce=*/true);
  transport_[0]->SendReliable(SiteId(1), 4, std::make_shared<TestMsg>(2));
  // Reverse datagram staged after delivery (t=1000) but before the pure-ack
  // delay (3000) expires; the ack attaches at its flush.
  kernel_.Schedule(1'500, [this]() {
    transport_[1]->SendDatagram(SiteId(0), std::make_shared<TestMsg>(9));
  });
  kernel_.Run(100'000);
  EXPECT_EQ(acked_[0], (std::vector<uint64_t>{4}));
  EXPECT_EQ(transport_[1]->pure_acks(), 0u);
  EXPECT_EQ(transport_[1]->piggyback_acks(), 1u);
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
}

TEST_F(TransportTest, CrashDropsStagedMessages) {
  Build(LinkParams::Synchronous(1000), /*coalesce=*/true);
  transport_[0]->SendDatagram(SiteId(1), std::make_shared<TestMsg>(1));
  transport_[0]->Crash();  // before the zero-delay flush event runs
  kernel_.Run(100'000);
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(network_->stats().packets_sent, 0u);
}

// ---- Frame cache (encode-once retransmission) -------------------------------
//
// A conduit that opts into the encode-once frame cache and mirrors the UDP
// conduit's discipline exactly: a packet arriving with non-empty cached bytes
// is replayed verbatim (a hit); otherwise it is encoded through the codec's
// append API, into the cache when one is attached. Every frame is then
// decoded and (optionally) delivered, so byte-level correctness is enforced
// on the same path the real runtime uses.
class CachingConduit final : public Conduit {
 public:
  explicit CachingConduit(sim::Kernel* kernel) : kernel_(kernel) {}

  struct Record {
    Packet packet;      // as sent; frame_cache stripped (held weakly below)
    std::string bytes;  // what went on the wire
    bool had_cache = false;
    bool was_hit = false;
  };

  bool WantsFrameCache() const override { return true; }

  void RegisterEndpoint(SiteId site, DeliveryFn deliver,
                        std::function<bool()> /*is_up*/) override {
    if (endpoints_.size() <= site.value()) {
      endpoints_.resize(site.value() + 1);
      deliver_to_.resize(site.value() + 1, true);
      drop_next_to_.resize(site.value() + 1, 0);
    }
    endpoints_[site.value()] = std::move(deliver);
  }

  void Send(Packet p) override {
    Record rec;
    rec.had_cache = p.frame_cache != nullptr;
    if (p.frame_cache && !p.frame_cache->bytes.empty()) {
      rec.was_hit = true;
      rec.bytes = p.frame_cache->bytes;
      ++hits_;
    } else {
      std::string scratch;
      if (p.frame_cache) {
        proto::EncodePacketTo(p, &p.frame_cache->bytes, &scratch);
        rec.bytes = p.frame_cache->bytes;
      } else {
        proto::EncodePacketTo(p, &rec.bytes, &scratch);
      }
      ++encodes_;
    }
    caches_.push_back(p.frame_cache);  // weak: eviction is observable
    rec.packet = std::move(p);
    rec.packet.frame_cache.reset();
    uint32_t d = rec.packet.dst.value();
    std::string bytes = rec.bytes;
    sent_.push_back(std::move(rec));
    if (d >= endpoints_.size() || !deliver_to_[d]) return;
    if (drop_next_to_[d] > 0) {
      --drop_next_to_[d];
      return;
    }
    kernel_->Schedule(1'000, [this, d, bytes = std::move(bytes)]() {
      auto decoded = proto::DecodePacket(bytes);
      if (!decoded.ok()) {
        ++decode_failures_;
        return;
      }
      endpoints_[d](*decoded);
    });
  }

  void Broadcast(SiteId, EnvelopePtr) override {}
  uint32_t num_sites() const override {
    return static_cast<uint32_t>(endpoints_.size());
  }

  sim::Kernel* kernel_;
  std::vector<DeliveryFn> endpoints_;
  std::vector<bool> deliver_to_;
  std::vector<uint64_t> drop_next_to_;
  std::vector<Record> sent_;
  std::vector<std::weak_ptr<FrameCache>> caches_;
  uint64_t hits_ = 0;
  uint64_t encodes_ = 0;
  uint64_t decode_failures_ = 0;
};

class FrameCacheTransportTest : public ::testing::Test {
 protected:
  FrameCacheTransportTest() { Build(/*coalesce=*/false); }

  void Build(bool coalesce) {
    conduit_ = std::make_unique<CachingConduit>(&kernel_);
    Transport::Options opts;
    opts.rto_us = 10'000;
    opts.ack_delay_us = 2'000;
    opts.coalesce = coalesce;
    for (uint32_t s = 0; s < 2; ++s) {
      transport_[s] = std::make_unique<Transport>(
          &kernel_, conduit_.get(), SiteId(s), &counters_[s], opts);
      Transport* t = transport_[s].get();
      conduit_->RegisterEndpoint(
          SiteId(s), [t](const Packet& p) { t->OnPacket(p); },
          []() { return true; });
      transport_[s]->set_deliver_fn([this, s](SiteId, EnvelopePtr payload) {
        received_[s].push_back(static_cast<int>(
            static_cast<const proto::VmAckMsg*>(payload.get())->vm.value()));
        return true;
      });
      transport_[s]->set_ack_fn(
          [this, s](uint64_t token) { acked_[s].push_back(token); });
    }
  }

  static EnvelopePtr Msg(int v) {
    auto m = MakeEnvelope<proto::VmAckMsg>();
    m->vm = VmId(uint64_t(v));
    m->from = SiteId(0);
    m->ts_packed = 100 + uint64_t(v);
    return m;
  }

  /// Every cached frame that went on the wire must be byte-identical to a
  /// from-scratch encode of the packet it claimed to carry — replayed or not.
  void ExpectWireMatchesFreshEncode() {
    for (const auto& rec : conduit_->sent_) {
      EXPECT_EQ(rec.bytes, proto::EncodePacket(rec.packet))
          << (rec.was_hit ? "replayed" : "encoded") << " frame diverged";
    }
  }

  sim::Kernel kernel_;
  std::unique_ptr<CachingConduit> conduit_;
  std::unique_ptr<Transport> transport_[2];
  obs::MetricsRegistry counters_[2];
  std::vector<int> received_[2];
  std::vector<uint64_t> acked_[2];
};

TEST_F(FrameCacheTransportTest,
       RetransmissionsReplayCachedBytesWhileStateIsUnchanged) {
  conduit_->deliver_to_[1] = false;  // black hole: no acks, endless RTOs
  transport_[0]->SendReliable(SiteId(1), 7, Msg(1));
  kernel_.Run(100'000);
  EXPECT_GE(transport_[0]->retransmissions(), 2u);
  // No reverse traffic, so the fingerprint never drifts: exactly one encode,
  // every retransmission a verbatim replay.
  EXPECT_EQ(conduit_->encodes_, 1u);
  EXPECT_EQ(conduit_->hits_, transport_[0]->retransmissions());
  EXPECT_EQ(transport_[0]->frame_cache_invalidations(), 0u);
  EXPECT_EQ(counters_[0].Get("transport.frame_cache_invalidate"), 0u);
  ExpectWireMatchesFreshEncode();
  // Cancel evicts the pending send and with it the cache entry.
  ASSERT_FALSE(conduit_->caches_.empty());
  EXPECT_FALSE(conduit_->caches_[0].expired());
  transport_[0]->CancelReliable(7);
  EXPECT_TRUE(conduit_->caches_[0].expired());
}

TEST_F(FrameCacheTransportTest, AckDriftInvalidatesAndReencodes) {
  conduit_->drop_next_to_[1] = 1;  // lose the first copy of A
  transport_[0]->SendReliable(SiteId(1), 7, Msg(1));
  // Reverse reliable traffic before A's RTO: site 0 now owes an ack, so the
  // retransmitted A carries a piggyback ack its cached bytes do not.
  kernel_.Schedule(3'000, [this]() {
    transport_[1]->SendReliable(SiteId(0), 9, Msg(2));
  });
  kernel_.Run(200'000);
  EXPECT_EQ(received_[1], (std::vector<int>{1}));
  EXPECT_EQ(received_[0], (std::vector<int>{2}));
  EXPECT_EQ(conduit_->decode_failures_, 0u);
  // The retransmission found stale cached bytes, discarded them (counted),
  // and re-encoded under the new fingerprint — never replayed stale state.
  EXPECT_GE(transport_[0]->frame_cache_invalidations(), 1u);
  EXPECT_GE(counters_[0].Get("transport.frame_cache_invalidate"), 1u);
  ExpectWireMatchesFreshEncode();
}

TEST_F(FrameCacheTransportTest, CumulativeAckEvictsTheCacheEntry) {
  transport_[0]->SendReliable(SiteId(1), 7, Msg(1));
  kernel_.Run(100'000);
  EXPECT_EQ(acked_[0], (std::vector<uint64_t>{7}));
  EXPECT_EQ(transport_[0]->outstanding(), 0u);
  ASSERT_FALSE(conduit_->caches_.empty());
  // The pending send is gone, and the cache entry died with it.
  EXPECT_TRUE(conduit_->caches_[0].expired());
  ExpectWireMatchesFreshEncode();
}

TEST_F(FrameCacheTransportTest, CoalescedFramesCarryNoCache) {
  Build(/*coalesce=*/true);
  conduit_->deliver_to_[1] = false;
  transport_[0]->SendReliable(SiteId(1), 7, Msg(1));
  transport_[0]->SendReliable(SiteId(1), 8, Msg(2));  // same flush quantum
  kernel_.Run(5'000);
  ASSERT_FALSE(conduit_->sent_.empty());
  const auto& first = conduit_->sent_[0];
  ASSERT_EQ(first.packet.extra.size(), 1u);
  // A frame with riders is a different byte string from any single-message
  // frame, so it must never reuse (or populate) a message's encode slot.
  EXPECT_FALSE(first.had_cache);
  ExpectWireMatchesFreshEncode();
}

TEST(TransportDeathTest, TokenCollisionFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::Kernel kernel;
  Network network(&kernel, 2, LinkParams::Synchronous(1000), Rng(6));
  obs::MetricsRegistry counters;
  Transport transport(&kernel, &network, SiteId(0), &counters,
                      Transport::Options{});
  transport.SendReliable(SiteId(1), 42, std::make_shared<TestMsg>(1));
  EXPECT_DEATH(
      transport.SendReliable(SiteId(1), 42, std::make_shared<TestMsg>(2)),
      "already a live reliable send");
}

}  // namespace
}  // namespace dvp::net
