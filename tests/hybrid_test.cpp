// Tests for the §8 extensions: the retrying client (livelock avoidance) and
// the dynamic hybrid placement controller.
#include <gtest/gtest.h>

#include "system/hybrid.h"
#include "system/retry_client.h"

namespace dvp {
namespace {

using core::CountDomain;
using system::HybridController;
using system::HybridOptions;
using system::RetryingClient;
using system::RetryOutcome;
using system::RetryPolicy;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnSpec;

class RetryClientTest : public ::testing::Test {
 protected:
  RetryClientTest() {
    item_ = catalog_.AddItem("pool", CountDomain::Instance(), 400);
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 9;
    opts.site.txn.local_compute_us = 30'000;
    cluster_ = std::make_unique<system::Cluster>(&catalog_, opts);
    cluster_->BootstrapEven();
  }

  core::Catalog catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(RetryClientTest, FirstAttemptSuccessNeedsNoRetry) {
  RetryingClient client(cluster_.get(), RetryPolicy{}, 1);
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 5)};
  RetryOutcome out;
  client.Submit(SiteId(0), spec, [&](const RetryOutcome& o) { out = o; });
  cluster_->RunFor(1'000'000);
  EXPECT_EQ(out.result.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(client.total_retries(), 0u);
}

TEST_F(RetryClientTest, LockConflictIsRetriedToSuccess) {
  RetryingClient client(cluster_.get(), RetryPolicy{}, 2);
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 5)};
  // First txn holds the lock for 30ms; the second collides, backs off,
  // retries and commits.
  RetryOutcome first, second;
  client.Submit(SiteId(0), spec, [&](const RetryOutcome& o) { first = o; });
  client.Submit(SiteId(0), spec, [&](const RetryOutcome& o) { second = o; });
  cluster_->RunFor(2'000'000);
  EXPECT_EQ(first.result.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(second.result.outcome, TxnOutcome::kCommitted);
  EXPECT_GT(second.attempts, 1u);
  EXPECT_GE(client.total_retries(), 1u);
  EXPECT_EQ(cluster_->TotalOf(item_), 390);
}

TEST_F(RetryClientTest, ExhaustedRetriesReportLastResult) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_us = 5'000;
  RetryingClient client(cluster_.get(), policy, 3);
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 1000)};  // can never succeed
  RetryOutcome out;
  client.Submit(SiteId(1), spec, [&](const RetryOutcome& o) { out = o; });
  cluster_->RunFor(5'000'000);
  EXPECT_EQ(out.result.outcome, TxnOutcome::kAbortTimeout);
  EXPECT_EQ(out.attempts, 2u);
}

TEST_F(RetryClientTest, InvalidSpecIsNotRetried) {
  RetryingClient client(cluster_.get(), RetryPolicy{}, 4);
  TxnSpec bad;  // empty
  RetryOutcome out;
  client.Submit(SiteId(0), bad, [&](const RetryOutcome& o) { out = o; });
  cluster_->RunFor(100'000);
  EXPECT_EQ(out.result.outcome, TxnOutcome::kAbortInvalid);
  EXPECT_EQ(out.attempts, 1u);
}

TEST_F(RetryClientTest, DownSiteIsFinal) {
  RetryingClient client(cluster_.get(), RetryPolicy{}, 5);
  cluster_->CrashSite(SiteId(2));
  TxnSpec spec;
  spec.ops = {TxnOp::Increment(item_, 1)};
  RetryOutcome out;
  client.Submit(SiteId(2), spec, [&](const RetryOutcome& o) { out = o; });
  EXPECT_EQ(out.result.outcome, TxnOutcome::kAbortSiteFailure);
  EXPECT_EQ(out.attempts, 1u);
}

// ---- HybridController -----------------------------------------------------------

class HybridTest : public ::testing::Test {
 protected:
  HybridTest() {
    item_ = catalog_.AddItem("pool", CountDomain::Instance(), 400);
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 21;
    cluster_ = std::make_unique<system::Cluster>(&catalog_, opts);
    cluster_->BootstrapEven();
    HybridOptions hopts;
    hopts.tick_us = 200'000;
    hopts.min_accesses = 5;
    controller_ = std::make_unique<HybridController>(cluster_.get(), hopts,
                                                     77);
    controller_->Start();
  }

  core::Catalog catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
  std::unique_ptr<HybridController> controller_;
};

TEST_F(HybridTest, StartsPartitioned) {
  EXPECT_EQ(controller_->mode(item_), HybridController::Mode::kPartitioned);
  EXPECT_FALSE(controller_->home(item_).valid());
  EXPECT_EQ(controller_->PreferredReadSite(item_, SiteId(3)), SiteId(3));
}

TEST_F(HybridTest, ReadHeavyWindowConsolidatesAtBusiestReader) {
  for (int i = 0; i < 10; ++i) {
    controller_->RecordAccess(item_, /*is_read=*/true, SiteId(2));
  }
  controller_->RecordAccess(item_, /*is_read=*/false, SiteId(0));
  cluster_->RunFor(3'000'000);  // several ticks + the drain transaction
  EXPECT_EQ(controller_->mode(item_), HybridController::Mode::kConsolidated);
  EXPECT_EQ(controller_->home(item_), SiteId(2));
  EXPECT_EQ(cluster_->site(SiteId(2)).LocalValue(item_), 400);
  EXPECT_EQ(controller_->PreferredReadSite(item_, SiteId(0)), SiteId(2));
  EXPECT_EQ(controller_->stats().consolidations, 1u);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(HybridTest, UpdateHeavyWindowResplits) {
  // Consolidate first.
  for (int i = 0; i < 10; ++i) {
    controller_->RecordAccess(item_, true, SiteId(1));
  }
  cluster_->RunFor(3'000'000);
  ASSERT_EQ(controller_->mode(item_), HybridController::Mode::kConsolidated);

  // Now an update-only window.
  for (int i = 0; i < 20; ++i) {
    controller_->RecordAccess(item_, false, SiteId(3));
  }
  cluster_->RunFor(3'000'000);
  EXPECT_EQ(controller_->mode(item_), HybridController::Mode::kPartitioned);
  EXPECT_EQ(controller_->stats().resplits, 1u);
  // Shares are even again.
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster_->site(SiteId(s)).LocalValue(item_), 100);
  }
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(HybridTest, QuietItemsStayPut) {
  controller_->RecordAccess(item_, true, SiteId(0));  // below min_accesses
  cluster_->RunFor(2'000'000);
  EXPECT_EQ(controller_->mode(item_), HybridController::Mode::kPartitioned);
  EXPECT_EQ(controller_->stats().consolidations, 0u);
}

TEST_F(HybridTest, ConsolidatedReadsAreLocalAndExact) {
  for (int i = 0; i < 10; ++i) {
    controller_->RecordAccess(item_, true, SiteId(2));
  }
  cluster_->RunFor(3'000'000);
  ASSERT_EQ(controller_->mode(item_), HybridController::Mode::kConsolidated);

  txn::TxnResult out;
  TxnSpec read;
  read.ops = {TxnOp::ReadFull(item_)};
  ASSERT_TRUE(cluster_
                  ->Submit(controller_->PreferredReadSite(item_, SiteId(0)),
                           read,
                           [&](const txn::TxnResult& r) { out = r; })
                  .ok());
  cluster_->RunFor(2'000'000);
  EXPECT_EQ(out.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(out.read_values.at(item_), 400);
  // A consolidated read still pays the confirmation rounds but ships no
  // value (all-zero rounds from the start would need... the protocol still
  // runs; what matters is it commits and is exact).
}

}  // namespace
}  // namespace dvp
