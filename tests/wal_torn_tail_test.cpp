// Torn/corrupted log tails (§7's stable-storage assumption, relaxed): a
// crash can leave the final record partially written, and disks can rot a
// byte anywhere. Recovery must stop at the last valid prefix — losing only
// the unforced suffix, never the site — and truncate the damage so the log
// stays append-clean. Exercised at EVERY record boundary, byte offset and
// bit position of a representative log, then end-to-end through a Site.
#include <gtest/gtest.h>

#include "dvpcore/catalog.h"
#include "dvpcore/domain.h"
#include "dvpcore/value_store.h"
#include "recovery/recovery.h"
#include "system/cluster.h"
#include "wal/record.h"
#include "wal/stable_storage.h"

namespace dvp {
namespace {

using core::CountDomain;

/// A log of `n` commit records: value goes 100, 101, ..., 100+n-1.
wal::StableStorage MakeLog(ItemId item, uint64_t n) {
  wal::StableStorage storage{SiteId(0)};
  storage.WriteImage(item, 100, 0);
  for (uint64_t i = 0; i < n; ++i) {
    wal::TxnCommitRec commit;
    commit.txn = TxnId(i + 1);
    commit.writes = {
        wal::FragmentWrite{item, static_cast<int64_t>(101 + i), 1, 0}};
    storage.Append(wal::LogRecord(commit));
  }
  return storage;
}

/// The value the prefix [0, upto) must rebuild to.
int64_t ExpectedValue(uint64_t upto) { return 100 + static_cast<int64_t>(upto); }

TEST(WalTornTail, TruncationAtEveryRecordBoundary) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 100);
  const uint64_t kRecords = 8;
  for (uint64_t keep = 0; keep <= kRecords; ++keep) {
    wal::StableStorage storage = MakeLog(item, kRecords);
    storage.Truncate(keep);
    ASSERT_EQ(storage.log_size(), keep);

    core::ValueStore store(&catalog);
    recovery::RecoveryReport report;
    ASSERT_TRUE(recovery::RebuildStore(storage, &store, &report).ok());
    EXPECT_FALSE(report.torn_tail) << "a clean truncation is not a tear";
    EXPECT_EQ(report.valid_prefix, keep);
    EXPECT_EQ(store.value(item), ExpectedValue(keep));
  }
}

TEST(WalTornTail, TornFinalRecordAtEveryByteCount) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 100);
  const uint64_t kRecords = 4;
  wal::StableStorage pristine = MakeLog(item, kRecords);
  size_t last_size = pristine.RecordSizeForTest(Lsn(kRecords - 1)).value();

  for (size_t keep_bytes = 0; keep_bytes < last_size; ++keep_bytes) {
    wal::StableStorage storage = pristine;
    ASSERT_TRUE(storage.TearTailForTest(keep_bytes).ok());

    core::ValueStore store(&catalog);
    recovery::RecoveryReport report;
    ASSERT_TRUE(recovery::RebuildStore(storage, &store, &report).ok())
        << "a torn tail must not fail recovery (keep=" << keep_bytes << ")";
    EXPECT_TRUE(report.torn_tail);
    EXPECT_EQ(report.valid_prefix, kRecords - 1);
    EXPECT_EQ(store.value(item), ExpectedValue(kRecords - 1))
        << "the torn record must contribute nothing";

    // The recovery protocol truncates before appending; the log is then
    // clean and appendable.
    storage.Truncate(report.valid_prefix);
    wal::TxnCommitRec next;
    next.txn = TxnId(99);
    next.writes = {wal::FragmentWrite{item, 7, 0, 0}};
    storage.Append(wal::LogRecord(next));
    core::ValueStore store2(&catalog);
    recovery::RecoveryReport report2;
    ASSERT_TRUE(recovery::RebuildStore(storage, &store2, &report2).ok());
    EXPECT_FALSE(report2.torn_tail);
    EXPECT_EQ(store2.value(item), 7);
  }
}

TEST(WalTornTail, BitFlipAtEveryRecordStopsThePrefixThere) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 100);
  const uint64_t kRecords = 6;
  wal::StableStorage pristine = MakeLog(item, kRecords);

  for (uint64_t lsn = 0; lsn < kRecords; ++lsn) {
    size_t size = pristine.RecordSizeForTest(Lsn(lsn)).value();
    // Every byte would be slow x records; probe first, middle, last —
    // covering the type byte, the payload and the CRC trailer.
    for (size_t off : {size_t{0}, size / 2, size - 1}) {
      wal::StableStorage storage = pristine;
      ASSERT_TRUE(storage.CorruptRecordForTest(Lsn(lsn), off).ok());

      core::ValueStore store(&catalog);
      recovery::RecoveryReport report;
      ASSERT_TRUE(recovery::RebuildStore(storage, &store, &report).ok());
      EXPECT_TRUE(report.torn_tail) << "lsn " << lsn << " off " << off;
      EXPECT_EQ(report.valid_prefix, lsn)
          << "replay must stop AT the damaged record, lsn " << lsn;
      EXPECT_EQ(store.value(item), ExpectedValue(lsn));
    }
  }
}

// End to end: a site whose log tail is torn while it is down recovers to the
// valid prefix, truncates the damage (counted), and rejoins; system-wide
// conservation holds because the lost commit record takes its fragment
// write and its committed delta away together.
TEST(WalTornTail, SiteRecoversThroughTornTail) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 120);
  system::ClusterOptions opts;
  opts.num_sites = 3;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // Local-only commits at site 2, so its log tail is a commit record.
  for (int i = 0; i < 5; ++i) {
    txn::TxnSpec spec;
    spec.ops = {txn::TxnOp::Increment(item, 1)};
    ASSERT_TRUE(cluster.Submit(SiteId(2), spec, nullptr).ok());
    cluster.RunFor(50'000);
  }
  cluster.RunFor(500'000);
  ASSERT_TRUE(cluster.AuditAll().ok());

  cluster.CrashSite(SiteId(2));
  uint64_t before = cluster.storage(SiteId(2)).log_size();
  ASSERT_TRUE(cluster.storage(SiteId(2)).TearTailForTest(3).ok());

  recovery::RecoveryReport report;
  cluster.site(SiteId(2)).Recover(
      [&](const recovery::RecoveryReport& r) { report = r; });
  cluster.RunFor(1'000'000);

  ASSERT_TRUE(cluster.site(SiteId(2)).IsUp());
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.valid_prefix, before - 1);
  // Recover() truncated the tear away; the RecoveryRec then went on top.
  EXPECT_GE(cluster.storage(SiteId(2)).log_size(), before - 1);
  EXPECT_EQ(cluster.site(SiteId(2)).counters().Get("recovery.torn_tail"), 1u);
  EXPECT_TRUE(cluster.AuditAll().ok());
  EXPECT_TRUE(cluster.AuditAllVolatile().ok());

  // The reborn site keeps working.
  txn::TxnSpec spec;
  spec.ops = {txn::TxnOp::Increment(item, 2)};
  ASSERT_TRUE(cluster.Submit(SiteId(2), spec, nullptr).ok());
  cluster.RunFor(500'000);
  EXPECT_TRUE(cluster.AuditAll().ok());
}

}  // namespace
}  // namespace dvp
