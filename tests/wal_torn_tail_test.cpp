// Torn/corrupted log tails (§7's stable-storage assumption, relaxed): a
// crash can leave the final record partially written, and disks can rot a
// byte anywhere. Recovery must stop at the last valid prefix — losing only
// the unforced suffix, never the site — and truncate the damage so the log
// stays append-clean. Exercised at EVERY record boundary, byte offset and
// bit position of a representative log, then end-to-end through a Site.
#include <gtest/gtest.h>

#include "chaos/harness.h"
#include "dvpcore/catalog.h"
#include "dvpcore/domain.h"
#include "dvpcore/value_store.h"
#include "recovery/recovery.h"
#include "system/cluster.h"
#include "wal/record.h"
#include "wal/stable_storage.h"

namespace dvp {
namespace {

using core::CountDomain;

/// A log of `n` commit records: value goes 100, 101, ..., 100+n-1.
wal::StableStorage MakeLog(ItemId item, uint64_t n) {
  wal::StableStorage storage{SiteId(0)};
  storage.WriteImage(item, 100, 0);
  for (uint64_t i = 0; i < n; ++i) {
    wal::TxnCommitRec commit;
    commit.txn = TxnId(i + 1);
    commit.writes = {
        wal::FragmentWrite{item, static_cast<int64_t>(101 + i), 1, 0}};
    storage.Append(wal::LogRecord(commit));
  }
  return storage;
}

/// The value the prefix [0, upto) must rebuild to.
int64_t ExpectedValue(uint64_t upto) { return 100 + static_cast<int64_t>(upto); }

TEST(WalTornTail, TruncationAtEveryRecordBoundary) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 100);
  const uint64_t kRecords = 8;
  for (uint64_t keep = 0; keep <= kRecords; ++keep) {
    wal::StableStorage storage = MakeLog(item, kRecords);
    storage.Truncate(keep);
    ASSERT_EQ(storage.log_size(), keep);

    core::ValueStore store(&catalog);
    recovery::RecoveryReport report;
    ASSERT_TRUE(recovery::RebuildStore(storage, &store, &report).ok());
    EXPECT_FALSE(report.torn_tail) << "a clean truncation is not a tear";
    EXPECT_EQ(report.valid_prefix, keep);
    EXPECT_EQ(store.value(item), ExpectedValue(keep));
  }
}

TEST(WalTornTail, TornFinalRecordAtEveryByteCount) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 100);
  const uint64_t kRecords = 4;
  wal::StableStorage pristine = MakeLog(item, kRecords);
  size_t last_size = pristine.RecordSizeForTest(Lsn(kRecords - 1)).value();

  for (size_t keep_bytes = 0; keep_bytes < last_size; ++keep_bytes) {
    wal::StableStorage storage = pristine;
    ASSERT_TRUE(storage.TearTailForTest(keep_bytes).ok());

    core::ValueStore store(&catalog);
    recovery::RecoveryReport report;
    ASSERT_TRUE(recovery::RebuildStore(storage, &store, &report).ok())
        << "a torn tail must not fail recovery (keep=" << keep_bytes << ")";
    EXPECT_TRUE(report.torn_tail);
    EXPECT_EQ(report.valid_prefix, kRecords - 1);
    EXPECT_EQ(store.value(item), ExpectedValue(kRecords - 1))
        << "the torn record must contribute nothing";

    // The recovery protocol truncates before appending; the log is then
    // clean and appendable.
    storage.Truncate(report.valid_prefix);
    wal::TxnCommitRec next;
    next.txn = TxnId(99);
    next.writes = {wal::FragmentWrite{item, 7, 0, 0}};
    storage.Append(wal::LogRecord(next));
    core::ValueStore store2(&catalog);
    recovery::RecoveryReport report2;
    ASSERT_TRUE(recovery::RebuildStore(storage, &store2, &report2).ok());
    EXPECT_FALSE(report2.torn_tail);
    EXPECT_EQ(store2.value(item), 7);
  }
}

TEST(WalTornTail, BitFlipAtEveryRecordStopsThePrefixThere) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 100);
  const uint64_t kRecords = 6;
  wal::StableStorage pristine = MakeLog(item, kRecords);

  for (uint64_t lsn = 0; lsn < kRecords; ++lsn) {
    size_t size = pristine.RecordSizeForTest(Lsn(lsn)).value();
    // Every byte would be slow x records; probe first, middle, last —
    // covering the type byte, the payload and the CRC trailer.
    for (size_t off : {size_t{0}, size / 2, size - 1}) {
      wal::StableStorage storage = pristine;
      ASSERT_TRUE(storage.CorruptRecordForTest(Lsn(lsn), off).ok());

      core::ValueStore store(&catalog);
      recovery::RecoveryReport report;
      ASSERT_TRUE(recovery::RebuildStore(storage, &store, &report).ok());
      EXPECT_TRUE(report.torn_tail) << "lsn " << lsn << " off " << off;
      EXPECT_EQ(report.valid_prefix, lsn)
          << "replay must stop AT the damaged record, lsn " << lsn;
      EXPECT_EQ(store.value(item), ExpectedValue(lsn));
    }
  }
}

// End to end: a site whose log tail is torn while it is down recovers to the
// valid prefix, truncates the damage (counted), and rejoins; system-wide
// conservation holds because the lost commit record takes its fragment
// write and its committed delta away together.
TEST(WalTornTail, SiteRecoversThroughTornTail) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 120);
  system::ClusterOptions opts;
  opts.num_sites = 3;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // Local-only commits at site 2, so its log tail is a commit record.
  for (int i = 0; i < 5; ++i) {
    txn::TxnSpec spec;
    spec.ops = {txn::TxnOp::Increment(item, 1)};
    ASSERT_TRUE(cluster.Submit(SiteId(2), spec, nullptr).ok());
    cluster.RunFor(50'000);
  }
  cluster.RunFor(500'000);
  ASSERT_TRUE(cluster.AuditAll().ok());

  cluster.CrashSite(SiteId(2));
  uint64_t before = cluster.storage(SiteId(2)).log_size();
  ASSERT_TRUE(cluster.storage(SiteId(2)).TearTailForTest(3).ok());

  recovery::RecoveryReport report;
  cluster.site(SiteId(2)).Recover(
      [&](const recovery::RecoveryReport& r) { report = r; });
  cluster.RunFor(1'000'000);

  ASSERT_TRUE(cluster.site(SiteId(2)).IsUp());
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.valid_prefix, before - 1);
  // Recover() truncated the tear away; the RecoveryRec then went on top.
  EXPECT_GE(cluster.storage(SiteId(2)).log_size(), before - 1);
  EXPECT_EQ(cluster.site(SiteId(2)).counters().Get("recovery.torn_tail"), 1u);
  EXPECT_TRUE(cluster.AuditAll().ok());
  EXPECT_TRUE(cluster.AuditAllVolatile().ok());

  // The reborn site keeps working.
  txn::TxnSpec spec;
  spec.ops = {txn::TxnOp::Increment(item, 2)};
  ASSERT_TRUE(cluster.Submit(SiteId(2), spec, nullptr).ok());
  cluster.RunFor(500'000);
  EXPECT_TRUE(cluster.AuditAll().ok());
}

// Group commit widens the gap between log_size and durable_size: a crash
// mid-group must drop the WHOLE unforced suffix, and recovery must replay
// exactly the forced prefix — never a partially-applied group.
TEST(WalTornTail, CrashMidGroupDropsTheWholeUnforcedSuffix) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 100);
  const uint64_t kForced = 3, kBuffered = 4;
  wal::StableStorage storage = MakeLog(item, kForced);
  for (uint64_t i = 0; i < kBuffered; ++i) {
    wal::TxnCommitRec commit;
    commit.txn = TxnId(kForced + i + 1);
    commit.writes = {wal::FragmentWrite{
        item, static_cast<int64_t>(101 + kForced + i), 1, 0}};
    storage.AppendBuffered(wal::LogRecord(commit));
  }
  ASSERT_EQ(storage.log_size(), kForced + kBuffered);
  ASSERT_EQ(storage.durable_size(), kForced);

  // Recovery reads the durable prefix — the buffered tail contributes
  // nothing even before the crash discards it.
  core::ValueStore store(&catalog);
  recovery::RecoveryReport report;
  ASSERT_TRUE(recovery::RebuildStore(storage, &store, &report).ok());
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.valid_prefix, kForced);
  EXPECT_EQ(store.value(item), ExpectedValue(kForced));

  // The crash path: the whole unforced suffix vanishes at once.
  EXPECT_EQ(storage.DropUnforcedTail(), kBuffered);
  EXPECT_EQ(storage.log_size(), kForced);
  EXPECT_EQ(storage.unforced_records(), 0u);
  core::ValueStore store2(&catalog);
  recovery::RecoveryReport report2;
  ASSERT_TRUE(recovery::RebuildStore(storage, &store2, &report2).ok());
  EXPECT_EQ(store2.value(item), ExpectedValue(kForced));
}

// End to end with the site running under group commit: transactions whose
// commit record is still in the batch buffer when the site crashes must be
// reported as site-failure aborts and leave no trace in the recovered
// store, while transactions whose covering force completed stay committed.
TEST(WalTornTail, SiteCrashMidBatchAbortsOnlyTheUnforcedGroup) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("d", CountDomain::Instance(), 120);
  system::ClusterOptions opts;
  opts.num_sites = 3;
  opts.site.group_commit.enabled = true;
  opts.site.group_commit.max_records = 64;       // only the timer can force
  opts.site.group_commit.max_delay_us = 100'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();  // 40 units at each site

  // Phase 1: commits whose timer fires. They must survive the later crash.
  std::vector<txn::TxnResult> phase1;
  for (int i = 0; i < 2; ++i) {
    txn::TxnSpec spec;
    spec.ops = {txn::TxnOp::Increment(item, 1)};
    ASSERT_TRUE(cluster
                    .Submit(SiteId(2), spec,
                            [&](const txn::TxnResult& r) {
                              phase1.push_back(r);
                            })
                    .ok());
  }
  cluster.RunFor(300'000);  // past the 100ms force timer
  ASSERT_EQ(phase1.size(), 2u);
  EXPECT_EQ(phase1[0].outcome, txn::TxnOutcome::kCommitted);
  EXPECT_EQ(phase1[1].outcome, txn::TxnOutcome::kCommitted);
  ASSERT_EQ(cluster.storage(SiteId(2)).unforced_records(), 0u);
  uint64_t durable_before = cluster.storage(SiteId(2)).durable_size();

  // Phase 2: commits that reach the batch buffer but not their force.
  std::vector<txn::TxnResult> phase2;
  for (int i = 0; i < 3; ++i) {
    txn::TxnSpec spec;
    spec.ops = {txn::TxnOp::Increment(item, 5)};
    ASSERT_TRUE(cluster
                    .Submit(SiteId(2), spec,
                            [&](const txn::TxnResult& r) {
                              phase2.push_back(r);
                            })
                    .ok());
  }
  cluster.RunFor(10'000);  // records appended; timer (100ms) has not fired
  // Two records per commit (TxnCommitRec + the applied marker), all buffered.
  ASSERT_EQ(cluster.storage(SiteId(2)).unforced_records(), 6u);
  EXPECT_TRUE(phase2.empty()) << "completion must wait for the force";

  cluster.CrashSite(SiteId(2));
  ASSERT_EQ(phase2.size(), 3u);
  for (const txn::TxnResult& r : phase2) {
    EXPECT_EQ(r.outcome, txn::TxnOutcome::kAbortSiteFailure);
  }
  EXPECT_EQ(cluster.site(SiteId(2)).counters().Get("wal.dropped_unforced"),
            6u);
  EXPECT_EQ(cluster.storage(SiteId(2)).log_size(), durable_before);

  cluster.RecoverSite(SiteId(2));
  cluster.RunFor(1'000'000);
  ASSERT_TRUE(cluster.site(SiteId(2)).IsUp());
  // 40 bootstrap + 2 phase-1 increments; the three unforced +5s never were.
  EXPECT_EQ(cluster.site(SiteId(2)).LocalValue(item), 42);
  EXPECT_TRUE(cluster.AuditAll().ok());
  EXPECT_TRUE(cluster.AuditAllVolatile().ok());
}

// Pinned chaos reproducer: crash/recover cycles timed to land inside open
// group-commit batches (records bound high, timer 2ms, crashes at odd
// offsets) with frame coalescing on. Guards the whole deferral chain —
// unforced commit records must abort as site failures, unforced Vm accepts
// must not ack, and conservation must hold through every rebirth.
TEST(WalTornTail, ChaosCrashMidBatchWithCoalescing) {
  chaos::ChaosCase c;
  c.seed = 404;
  c.perturb_seed = 4041;
  c.max_jitter_us = 150;
  c.workload.sites = 4;
  c.workload.items = 2;
  c.workload.total = 200;
  c.workload.txns = 60;
  c.workload.gap_us = 15'000;
  c.workload.redist_permille = 350;
  c.workload.max_amount = 15;
  c.workload.timeout_us = 150'000;
  c.workload.loss_permille = 200;
  c.workload.dup_permille = 100;
  c.workload.group_commit_records = 32;  // the 2ms timer does the forcing
  c.workload.group_commit_delay_us = 2'000;
  c.workload.coalesce = 1;
  c.plan.events = {{101'000, chaos::FaultKind::kCrash, 1, 0},
                   {400'000, chaos::FaultKind::kRecover, 1, 0},
                   {501'500, chaos::FaultKind::kCrash, 2, 0},
                   {503'000, chaos::FaultKind::kCrash, 3, 0},
                   {900'000, chaos::FaultKind::kRecover, 2, 0},
                   {950'000, chaos::FaultKind::kRecover, 3, 0},
                   {1'201'000, chaos::FaultKind::kCrash, 1, 0},
                   {1'500'000, chaos::FaultKind::kRecover, 1, 0}};

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << r.violation << "\n" << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
}

}  // namespace
}  // namespace dvp
