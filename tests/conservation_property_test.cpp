// The central safety property (§3, §4.2): at every instant,
//     Σ fragments + Σ live Vm = initial + Σ committed deltas
// for every item — under random transactions, random partitions, random
// crashes/recoveries, lossy/duplicating links. Runs through the chaos
// harness with the durable audit evaluated after EVERY simulation event, and
// the full oracle suite (volatile view, exactly-once, WAL prefixes) at probe
// instants and after the drain.
//
// Two layers, as in nonblocking_property_test: pinned cases mirroring the
// pre-chaos fixed fault mixes, plus generated-FaultPlan swarm seeds.
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"

namespace dvp {
namespace {

chaos::WorkloadSpec ConservationWorkload(uint32_t loss_permille,
                                         uint32_t dup_permille) {
  chaos::WorkloadSpec w;
  w.sites = 4;
  w.items = 2;
  w.total = 300;
  w.txns = 70;
  w.gap_us = 30'000;
  w.redist_permille = 250;  // SendValue/Prefetch keep Vm traffic high
  w.max_amount = 12;
  w.timeout_us = 150'000;
  w.loss_permille = loss_permille;
  w.dup_permille = dup_permille;
  return w;
}

struct ConsCase {
  const char* name;
  uint64_t seed;
  uint32_t loss_permille;
  uint32_t dup_permille;
  bool crashes;
  bool partitions;
};

class ConservationChaosTest : public ::testing::TestWithParam<ConsCase> {};

TEST_P(ConservationChaosTest, InvariantHoldsAfterEveryEvent) {
  const ConsCase& p = GetParam();

  chaos::ChaosCase c;
  c.seed = p.seed;
  c.workload = ConservationWorkload(p.loss_permille, p.dup_permille);

  chaos::PlanSpec spec;
  spec.num_sites = 4;
  spec.horizon_us = 2'100'000;
  spec.max_events = 12;
  spec.crashes = p.crashes;
  spec.partitions = p.partitions;
  spec.link_faults = false;  // the workload's baseline loss/dup covers links
  spec.skew = false;
  c.plan = chaos::GeneratePlan(p.seed, spec);

  chaos::RunOptions opts;
  opts.audit_every_event = true;
  chaos::RunResult r = chaos::RunCase(c, opts);
  EXPECT_TRUE(r.ok) << p.name << ": " << r.violation << "\n" << c.ToLiteral();
  // finalize=true already required in-flight value to drain to zero; make
  // the intent visible here too.
  EXPECT_EQ(r.decided, r.submitted);
  EXPECT_GT(r.events_executed, 100u) << "the run must actually have run";
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, ConservationChaosTest,
    ::testing::Values(ConsCase{"calm", 1, 0, 0, false, false},
                      ConsCase{"lossy", 2, 300, 100, false, false},
                      ConsCase{"crashes", 3, 0, 0, true, false},
                      ConsCase{"partitions", 4, 0, 0, false, true},
                      ConsCase{"everything", 5, 300, 100, true, true},
                      ConsCase{"brutal", 6, 600, 200, true, true},
                      ConsCase{"crashy_partitions", 7, 100, 0, true, true},
                      ConsCase{"dupheavy", 8, 200, 300, false, true}),
    [](const auto& info) { return info.param.name; });

// Full swarm cases (generated workload + plan + perturbation). The per-event
// audit is skipped here — the probe oracles carry the mid-flight checking —
// so these seeds can afford bigger plans and schedule perturbation.
class ConservationSwarmTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConservationSwarmTest, SwarmCaseHoldsAllOracles) {
  uint64_t seed = GetParam();
  chaos::ChaosCase c = chaos::MakeSwarmCase(seed);
  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.violation << "\n"
                    << c.ToLiteral();
}

INSTANTIATE_TEST_SUITE_P(Swarm, ConservationSwarmTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace dvp
