// The central safety property (§3, §4.2): at every instant,
//     Σ fragments + Σ live Vm = initial + Σ committed deltas
// for every item — under random transactions, random partitions, random
// crashes/recoveries, lossy/duplicating links. The auditor runs from stable
// state only, so it is checked after EVERY simulation event.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnSpec;

struct ChaosCase {
  uint64_t seed;
  double loss;
  double dup;
  bool crashes;
  bool partitions;
};

class ConservationChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ConservationChaosTest, InvariantHoldsAfterEveryEvent) {
  const ChaosCase& c = GetParam();

  core::Catalog catalog;
  std::vector<ItemId> items;
  items.push_back(catalog.AddItem("a", CountDomain::Instance(), 300));
  items.push_back(catalog.AddItem("b", CountDomain::Instance(), 120));

  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = c.seed;
  opts.link.loss_prob = c.loss;
  opts.link.duplicate_prob = c.dup;
  opts.site.txn.timeout_us = 150'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // Audit after every event (expensive; keep the horizon modest).
  uint64_t audits = 0;
  cluster.kernel().set_post_event_hook([&]() {
    ++audits;
    Status s = cluster.AuditAll();
    ASSERT_TRUE(s.ok()) << "after event " << audits << ": " << s.ToString();
  });

  Rng rng(c.seed * 101 + 7);
  std::vector<bool> up(4, true);

  // Random activity: transactions, redistribution, partitions, crashes.
  for (int step = 0; step < 120; ++step) {
    double roll = rng.NextDouble();
    SiteId at(static_cast<uint32_t>(rng.NextBounded(4)));
    ItemId item = items[rng.NextBounded(items.size())];
    if (roll < 0.55) {
      TxnSpec spec;
      core::Value amount = rng.NextInt(1, 12);
      spec.ops = {rng.NextBool(0.5) ? TxnOp::Decrement(item, amount)
                                    : TxnOp::Increment(item, amount)};
      if (up[at.value()]) (void)cluster.Submit(at, spec, nullptr);
    } else if (roll < 0.65) {
      if (up[at.value()]) {
        SiteId dst(static_cast<uint32_t>(rng.NextBounded(4)));
        (void)cluster.site(at).SendValue(dst, item, rng.NextInt(1, 5));
      }
    } else if (roll < 0.72) {
      if (up[at.value()]) cluster.site(at).Prefetch(item, rng.NextInt(1, 8));
    } else if (roll < 0.80 && c.partitions) {
      if (rng.NextBool(0.5)) {
        (void)cluster.Partition(
            {{SiteId(0), SiteId(rng.NextBool(0.5) ? 1u : 2u)},
             {SiteId(3), SiteId(rng.NextBool(0.5) ? 2u : 1u)}});
      } else {
        cluster.Heal();
      }
    } else if (roll < 0.88 && c.crashes) {
      if (up[at.value()]) {
        cluster.CrashSite(at);
        up[at.value()] = false;
      } else {
        cluster.RecoverSite(at);
        up[at.value()] = true;
      }
    }
    cluster.RunFor(rng.NextInt(1'000, 60'000));
  }

  // Let everything settle (recover all, heal, drain).
  cluster.Heal();
  for (uint32_t s = 0; s < 4; ++s) {
    if (!up[s]) cluster.RecoverSite(SiteId(s));
  }
  // The drain window must cover several capped backoff rounds: under heavy
  // loss a retransmission fires every rto_max (1.6s) until one gets through.
  cluster.RunFor(15'000'000);
  EXPECT_TRUE(cluster.AuditAll().ok());
  EXPECT_GT(audits, 40u) << "the hook must actually have audited";

  // After the dust settles with no faults pending, in-flight value drains to
  // zero (every Vm is eventually accepted).
  for (ItemId item : items) {
    auto breakdown = cluster.Audit(item);
    EXPECT_EQ(breakdown.in_flight, 0)
        << "undelivered Vm value remained for item " << item.value();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ConservationChaosTest,
    ::testing::Values(
        ChaosCase{1, 0.0, 0.0, false, false},   // calm
        ChaosCase{2, 0.3, 0.1, false, false},   // lossy
        ChaosCase{3, 0.0, 0.0, true, false},    // crashes
        ChaosCase{4, 0.0, 0.0, false, true},    // partitions
        ChaosCase{5, 0.3, 0.1, true, true},     // everything
        ChaosCase{6, 0.6, 0.2, true, true},     // brutal
        ChaosCase{7, 0.1, 0.0, true, true},
        ChaosCase{8, 0.2, 0.3, false, true}));

}  // namespace
}  // namespace dvp
