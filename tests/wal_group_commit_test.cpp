// The group-commit force scheduler: appends accumulate in the volatile batch
// buffer and one force covers them all — triggered by the record bound, the
// byte bound or the timer, whichever first. Completion callbacks run only
// once their record is durable; a crash drops exactly the unforced suffix.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "sim/kernel.h"
#include "wal/group_commit.h"
#include "wal/record.h"
#include "wal/stable_storage.h"

namespace dvp {
namespace {

wal::LogRecord Commit(uint64_t i) {
  wal::TxnCommitRec rec;
  rec.txn = TxnId(i);
  rec.writes = {wal::FragmentWrite{ItemId(0), int64_t(100 + i), 1, 0}};
  return wal::LogRecord(rec);
}

struct GroupCommitTest : ::testing::Test {
  wal::GroupCommitOptions Opts(uint32_t k, SimTime t,
                               uint64_t bytes = 1 << 16) {
    wal::GroupCommitOptions o;
    o.enabled = true;
    o.max_records = k;
    o.max_delay_us = t;
    o.max_bytes = bytes;
    return o;
  }

  sim::Kernel kernel;
  wal::StableStorage storage{SiteId(0)};
  obs::MetricsRegistry counters;
};

TEST_F(GroupCommitTest, DisabledModeIsForcePerAppend) {
  wal::GroupCommitLog log(&kernel, &storage, &counters,
                          wal::GroupCommitOptions{});
  int durable = 0;
  log.Append(Commit(1), [&] { ++durable; });
  log.Append(Commit(2), [&] { ++durable; });
  EXPECT_EQ(durable, 2);  // callbacks ran inline, before Append returned
  EXPECT_EQ(storage.forces(), 2u);
  EXPECT_EQ(storage.durable_size(), 2u);
  EXPECT_EQ(storage.unforced_records(), 0u);
}

TEST_F(GroupCommitTest, RecordBoundTriggersTheFlush) {
  wal::GroupCommitLog log(&kernel, &storage, &counters, Opts(4, 10'000));
  int durable = 0;
  for (uint64_t i = 1; i <= 3; ++i) log.Append(Commit(i), [&] { ++durable; });
  EXPECT_EQ(durable, 0);  // batch open: nothing durable, nothing completed
  EXPECT_EQ(storage.durable_size(), 0u);
  EXPECT_EQ(storage.unforced_records(), 3u);
  EXPECT_EQ(log.pending_callbacks(), 3u);

  log.Append(Commit(4), [&] { ++durable; });  // K reached: flush inline
  EXPECT_EQ(durable, 4);
  EXPECT_EQ(storage.forces(), 1u);
  EXPECT_EQ(storage.durable_size(), 4u);
  EXPECT_EQ(storage.last_group_records(), 4u);
  EXPECT_EQ(counters.Get("wal.group_forces"), 1u);
  EXPECT_EQ(counters.Get("wal.group_records"), 4u);
}

TEST_F(GroupCommitTest, TimerCoversAPartialBatch) {
  wal::GroupCommitLog log(&kernel, &storage, &counters, Opts(8, 1'000));
  int durable = 0;
  log.Append(Commit(1), [&] { ++durable; });
  log.Append(Commit(2), [&] { ++durable; });
  kernel.Run(999);
  EXPECT_EQ(durable, 0);
  kernel.Run(1'000);
  EXPECT_EQ(durable, 2);
  EXPECT_EQ(storage.forces(), 1u);
  EXPECT_EQ(storage.last_group_records(), 2u);
}

TEST_F(GroupCommitTest, ByteBoundTriggersTheFlush) {
  // max_bytes = 1: every append overflows the byte budget and forces.
  wal::GroupCommitLog log(&kernel, &storage, &counters,
                          Opts(1'000, 1'000'000, /*bytes=*/1));
  int durable = 0;
  log.Append(Commit(1), [&] { ++durable; });
  log.Append(Commit(2), [&] { ++durable; });
  EXPECT_EQ(durable, 2);
  EXPECT_EQ(storage.forces(), 2u);
}

TEST_F(GroupCommitTest, ExplicitFlushIsIdempotent) {
  wal::GroupCommitLog log(&kernel, &storage, &counters, Opts(8, 10'000));
  int durable = 0;
  log.Append(Commit(1), [&] { ++durable; });
  log.Flush();
  EXPECT_EQ(durable, 1);
  EXPECT_EQ(storage.forces(), 1u);
  log.Flush();  // nothing pending: no force, no callback re-run
  EXPECT_EQ(durable, 1);
  EXPECT_EQ(storage.forces(), 1u);
}

// The Flush durability invariant: a sync Append interleaved with an open
// batch forces the WHOLE tail (the durable log stays a prefix of append
// order), so at flush time every pending callback's record is durable.
TEST_F(GroupCommitTest, InterleavedSyncAppendForcesTheWholeTail) {
  wal::GroupCommitLog log(&kernel, &storage, &counters, Opts(8, 10'000));
  int durable = 0;
  log.Append(Commit(1), [&] { ++durable; });
  log.Append(Commit(2), [&] { ++durable; });
  storage.Append(Commit(3));  // sync append (e.g. a recovery record)
  EXPECT_EQ(storage.durable_size(), 3u);  // buffered records rode the force
  EXPECT_EQ(storage.last_group_records(), 3u);
  EXPECT_EQ(durable, 0);  // completions still wait for the scheduler
  kernel.Run(10'000);
  EXPECT_EQ(durable, 2);
  EXPECT_EQ(storage.forces(), 1u);  // the flush found nothing left to force
}

TEST_F(GroupCommitTest, CrashDropsExactlyTheUnforcedSuffix) {
  wal::GroupCommitLog log(&kernel, &storage, &counters, Opts(8, 10'000));
  log.Append(Commit(1), nullptr);
  log.Append(Commit(2), nullptr);
  log.Flush();
  log.Append(Commit(3), nullptr);
  log.Append(Commit(4), nullptr);
  EXPECT_EQ(storage.log_size(), 4u);
  EXPECT_EQ(storage.durable_size(), 2u);
  EXPECT_EQ(storage.DropUnforcedTail(), 2u);
  EXPECT_EQ(storage.log_size(), 2u);
  EXPECT_EQ(storage.durable_size(), 2u);
  EXPECT_EQ(storage.unforced_records(), 0u);
}

TEST_F(GroupCommitTest, TimerIsHarmlessAfterTheLogDies) {
  auto log = std::make_unique<wal::GroupCommitLog>(&kernel, &storage,
                                                   &counters, Opts(8, 1'000));
  log->Append(Commit(1), nullptr);
  log.reset();  // armed timer outlives the scheduler object
  kernel.Run(10'000);  // must not touch freed memory (ASan run proves it)
  EXPECT_EQ(storage.unforced_records(), 1u);  // nobody flushed it
}

}  // namespace
}  // namespace dvp
