// Unit tests for the WAL: encoding primitives, record round-trips, checksum
// protection, stable storage semantics.
#include <gtest/gtest.h>

#include <limits>

#include "wal/encoding.h"
#include "wal/record.h"
#include "wal/stable_storage.h"

namespace dvp::wal {
namespace {

// ---- Encoding primitives ------------------------------------------------------

TEST(EncodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, 0);
  Decoder dec(buf);
  uint32_t a, b;
  ASSERT_TRUE(dec.GetFixed32(&a));
  ASSERT_TRUE(dec.GetFixed32(&b));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0u);
  EXPECT_TRUE(dec.empty());
}

TEST(EncodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Decoder dec(buf);
  uint64_t v;
  ASSERT_TRUE(dec.GetFixed64(&v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  Decoder dec(buf);
  uint64_t v;
  ASSERT_TRUE(dec.GetVarint64(&v));
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(dec.empty());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 123,
                      std::numeric_limits<uint64_t>::max()));

class VarsintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(VarsintRoundTrip, Signed) {
  std::string buf;
  PutVarsint64(&buf, GetParam());
  Decoder dec(buf);
  int64_t v;
  ASSERT_TRUE(dec.GetVarsint64(&v));
  EXPECT_EQ(v, GetParam());
}

INSTANTIATE_TEST_SUITE_P(EdgeValues, VarsintRoundTrip,
                         ::testing::Values(0LL, 1LL, -1LL, 63LL, -64LL, 64LL,
                                           -65LL, 1'000'000LL, -1'000'000LL,
                                           std::numeric_limits<int64_t>::max(),
                                           std::numeric_limits<int64_t>::min()));

TEST(EncodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  Decoder dec(buf);
  std::string_view a, b;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a));
  ASSERT_TRUE(dec.GetLengthPrefixed(&b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
}

TEST(EncodingTest, DecoderUnderflowFails) {
  Decoder dec("ab");
  uint32_t v32;
  uint64_t v64;
  EXPECT_FALSE(dec.GetFixed32(&v32));
  EXPECT_FALSE(dec.GetFixed64(&v64));
}

TEST(EncodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  buf.resize(buf.size() - 1);
  Decoder dec(buf);
  uint64_t v;
  EXPECT_FALSE(dec.GetVarint64(&v));
}

TEST(EncodingTest, Crc32cKnownVector) {
  // RFC 3720 test vector: 32 bytes of zero.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
}

TEST(EncodingTest, CrcDetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  uint32_t before = Crc32c(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32c(data), before);
}

// ---- Record round-trips -----------------------------------------------------------

LogRecord SampleRecord(int kind) {
  switch (kind) {
    case 0: {
      TxnCommitRec r;
      r.txn = TxnId(999);
      r.ts_packed = 12345;
      r.writes = {FragmentWrite{ItemId(1), 100, -5, 777},
                  FragmentWrite{ItemId(2), -3, 3, 0}};
      return r;
    }
    case 1:
      return TxnAppliedRec{TxnId(999)};
    case 2: {
      VmCreateRec r;
      r.vm = VmId(0x0001000000000042ULL);
      r.dst = SiteId(3);
      r.item = ItemId(7);
      r.amount = 55;
      r.for_txn = TxnId(12);
      r.write = FragmentWrite{ItemId(7), 45, -55, 99};
      return r;
    }
    case 3: {
      VmAcceptRec r;
      r.vm = VmId(17);
      r.src = SiteId(1);
      r.item = ItemId(7);
      r.amount = 55;
      r.for_txn = TxnId(12);
      r.write = FragmentWrite{ItemId(7), 100, 55, 98};
      return r;
    }
    case 4:
      return VmAckedRec{VmId(17)};
    case 5:
      return RecoveryRec{3, 424242};
    case 6:
      return CheckpointRec{};
    case 7: {
      PrepareRec r;
      r.txn = TxnId(5);
      r.coordinator = SiteId(2);
      r.writes = {FragmentWrite{ItemId(0), 10, -1, 4}};
      return r;
    }
    case 8:
      return DecisionRec{TxnId(5), true};
    default:
      return CheckpointRec{};
  }
}

class RecordRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RecordRoundTrip, EncodeDecode) {
  LogRecord original = SampleRecord(GetParam());
  std::string encoded = EncodeRecord(original);
  auto decoded = DecodeRecord(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), original);
}

TEST_P(RecordRoundTrip, CorruptionIsDetectedAtEveryByte) {
  LogRecord original = SampleRecord(GetParam());
  std::string encoded = EncodeRecord(original);
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string damaged = encoded;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x20);
    auto decoded = DecodeRecord(damaged);
    // Either detected as corruption or (never) silently equal.
    if (decoded.ok()) {
      EXPECT_FALSE(decoded.value() == original)
          << "undetected corruption at byte " << i;
    }
  }
}

TEST_P(RecordRoundTrip, PrinterProducesNonEmptyText) {
  EXPECT_FALSE(RecordToString(SampleRecord(GetParam())).empty());
}

INSTANTIATE_TEST_SUITE_P(AllRecordTypes, RecordRoundTrip,
                         ::testing::Range(0, 9));

TEST(RecordTest, DecodeRejectsShortBuffer) {
  EXPECT_FALSE(DecodeRecord("ab").ok());
  EXPECT_FALSE(DecodeRecord("").ok());
}

TEST(RecordTest, DecodeRejectsUnknownType) {
  std::string body(1, char(99));
  std::string buf;
  PutFixed32(&buf, Crc32c(body));
  buf += body;
  auto decoded = DecodeRecord(buf);
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

// ---- StableStorage ---------------------------------------------------------------

TEST(StableStorageTest, AppendAssignsDenseLsns) {
  StableStorage storage((SiteId(0)));
  EXPECT_EQ(storage.Append(CheckpointRec{}).value(), 0u);
  EXPECT_EQ(storage.Append(TxnAppliedRec{TxnId(1)}).value(), 1u);
  EXPECT_EQ(storage.log_size(), 2u);
  EXPECT_EQ(storage.forces(), 2u);
  EXPECT_GT(storage.log_bytes(), 0u);
}

TEST(StableStorageTest, ReadDecodesByLsn) {
  StableStorage storage((SiteId(0)));
  storage.Append(TxnAppliedRec{TxnId(7)});
  auto rec = storage.Read(Lsn(0));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(std::get<TxnAppliedRec>(rec.value()).txn, TxnId(7));
  EXPECT_FALSE(storage.Read(Lsn(5)).ok());
}

TEST(StableStorageTest, ScanVisitsSuffixInOrder) {
  StableStorage storage((SiteId(0)));
  for (uint64_t i = 0; i < 5; ++i) storage.Append(TxnAppliedRec{TxnId(i)});
  std::vector<uint64_t> seen;
  ASSERT_TRUE(storage
                  .Scan(2,
                        [&](Lsn lsn, const LogRecord& rec) {
                          seen.push_back(lsn.value());
                          EXPECT_EQ(std::get<TxnAppliedRec>(rec).txn.value(),
                                    lsn.value());
                        })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{2, 3, 4}));
}

TEST(StableStorageTest, ScanReportsCorruption) {
  StableStorage storage((SiteId(0)));
  storage.Append(TxnAppliedRec{TxnId(1)});
  ASSERT_TRUE(storage.CorruptRecordForTest(Lsn(0), 5).ok());
  Status s = storage.Scan(0, [](Lsn, const LogRecord&) {});
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(StableStorageTest, ImageAndCheckpointWatermark) {
  StableStorage storage((SiteId(1)));
  storage.WriteImage(ItemId(0), 42, 7);
  storage.Append(CheckpointRec{});
  storage.set_checkpoint_upto(1);
  EXPECT_EQ(storage.checkpoint_upto(), 1u);
  EXPECT_EQ(storage.image().at(ItemId(0)).value, 42);
  EXPECT_EQ(storage.image().at(ItemId(0)).ts_packed, 7u);
}

TEST(StableStorageTest, PostAppendHookFires) {
  StableStorage storage((SiteId(0)));
  int fired = 0;
  storage.set_post_append_hook([&](Lsn lsn, const LogRecord&) {
    EXPECT_EQ(lsn.value(), uint64_t(fired));
    ++fired;
  });
  storage.Append(CheckpointRec{});
  storage.Append(CheckpointRec{});
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace dvp::wal
