// The observability layer: deterministic JSON sink (strict-JSON nan/inf
// handling, empty-histogram extrema), typed metrics registry and its legacy
// CounterSet view, the causal trace recorder, and the end-to-end contracts —
// a traced chaos run is byte-stable across executions and digest-identical
// to an untraced one, and a planted conservation violation's explanation
// names the offending Vm transfer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "bench/bench_common.h"
#include "chaos/harness.h"
#include "chaos/oracles.h"
#include "common/histogram.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/kernel.h"
#include "vm/vm_manager.h"
#include "workload/adapter.h"

namespace dvp {
namespace {

// ---- JsonWriter -----------------------------------------------------------------

TEST(JsonWriterTest, NonFiniteDoublesSerializeAsNull) {
  // Regression: the old bench JsonMetrics printed %.6f, so a NaN (e.g. a
  // rate with a zero denominator) rendered as "nan" — not JSON at all.
  obs::JsonWriter w;
  w.Set("a.nan", std::nan(""));
  w.Set("b.inf", std::numeric_limits<double>::infinity());
  w.Set("c.neg_inf", -std::numeric_limits<double>::infinity());
  w.Set("d.fine", 1.5);
  std::string out = w.ToString();
  EXPECT_NE(out.find("\"a.nan\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"b.inf\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"c.neg_inf\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"d.fine\": 1.500000"), std::string::npos) << out;
  EXPECT_EQ(out.find(": nan"), std::string::npos)
      << "no bare nan token may survive: " << out;
  EXPECT_EQ(out.find(": inf"), std::string::npos) << out;
  EXPECT_EQ(out.find(": -inf"), std::string::npos) << out;
}

TEST(JsonWriterTest, KeysEmitSortedAndEscaped) {
  obs::JsonWriter w;
  w.Set("zeta", uint64_t{1});
  w.Set("alpha", std::string("line1\nline2\t\"quoted\""));
  w.Set("mid", true);
  std::string out = w.ToString();
  size_t a = out.find("alpha"), m = out.find("mid"), z = out.find("zeta");
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  EXPECT_NE(out.find("line1\\nline2\\t\\\"quoted\\\""), std::string::npos)
      << out;
}

TEST(JsonWriterTest, EmptyHistogramEmitsNullExtrema) {
  // min()/max() return 0.0 on an empty histogram (pinned API); the dump must
  // not launder that placeholder into a fake sample.
  Histogram empty, full;
  full.Add(3.0);
  full.Add(5.0);
  obs::JsonWriter w;
  w.SetHistogram("none", empty);
  w.SetHistogram("some", full);
  std::string out = w.ToString();
  EXPECT_NE(out.find("\"none.n\": 0"), std::string::npos) << out;
  EXPECT_NE(out.find("\"none.min\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"none.max\": null"), std::string::npos) << out;
  EXPECT_NE(out.find("\"some.min\": 3.000000"), std::string::npos) << out;
  EXPECT_NE(out.find("\"some.max\": 5.000000"), std::string::npos) << out;
}

TEST(HistogramTest, SummaryOfEmptyReportsNoExtrema) {
  Histogram h;
  EXPECT_EQ(h.Summary(), "n=0");
  h.Add(2.0);
  EXPECT_NE(h.Summary().find("max="), std::string::npos);
  EXPECT_NE(h.Summary().find("p999="), std::string::npos);
}

TEST(HistogramTest, P999SitsBetweenP99AndMax) {
  // A 1..1000 ramp: the interpolated quantiles are exactly computable, and
  // p999 must resolve tail structure p99 cannot see.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(double(i));
  EXPECT_NEAR(h.P99(), 990.01, 1e-9);
  EXPECT_NEAR(h.P999(), 999.001, 1e-9);
  EXPECT_GT(h.P999(), h.P99());
  EXPECT_LE(h.P999(), h.max());
  EXPECT_EQ(h.Percentile(0.999), h.P999());
}

TEST(JsonWriterTest, SetHistogramEmitsP999) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(double(i));
  obs::JsonWriter w;
  w.SetHistogram("lat", h);
  std::string out = w.ToString();
  EXPECT_NE(out.find("\"lat.p99\": "), std::string::npos) << out;
  EXPECT_NE(out.find("\"lat.p999\": "), std::string::npos) << out;
}

// ---- MetricsRegistry ------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndReadable) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.counter("txn.committed");
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(m.Get("txn.committed"), 5u);
  EXPECT_EQ(m.counter("txn.committed"), c) << "register-or-get must be idempotent";
  EXPECT_EQ(m.Get("never.registered"), 0u);

  obs::Gauge* g = m.gauge("dedup.peak");
  g->NoteMax(7);
  g->NoteMax(3);
  EXPECT_EQ(m.GetGauge("dedup.peak"), 7);
}

TEST(MetricsRegistryTest, CounterSetViewSkipsZeros) {
  obs::MetricsRegistry m;
  m.counter("a.used")->Inc(2);
  m.counter("b.registered_only");  // never incremented
  CounterSet view = m.AsCounterSet();
  EXPECT_EQ(view.Get("a.used"), 2u);
  EXPECT_EQ(view.counters().count("b.registered_only"), 0u)
      << "zero-valued handles must stay out of digests and dumps";
}

TEST(MetricsRegistryTest, NopSinkAbsorbsWrites) {
  obs::MetricsRegistry::Nop()->Inc(123);
  obs::MetricsRegistry::NopGauge()->NoteMax(9);
  obs::Counter* c = obs::CounterIn(nullptr, "whatever");
  EXPECT_EQ(c, obs::MetricsRegistry::Nop());
}

TEST(MetricsRegistryTest, DumpJsonRendersEverything) {
  obs::MetricsRegistry m;
  m.counter("c.one")->Inc();
  m.gauge("g.level")->Set(-3);
  m.histogram("h.lat")->Add(10.0);
  obs::JsonWriter w;
  m.DumpJson(&w, "site0.");
  std::string out = w.ToString();
  EXPECT_NE(out.find("\"site0.c.one\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"site0.g.level\": -3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"site0.h.lat.n\": 1"), std::string::npos) << out;
}

// ---- TraceRecorder --------------------------------------------------------------

TEST(TraceRecorderTest, RecordsEventsWithKernelTime) {
  sim::Kernel kernel;
  obs::TraceRecorder rec;
  rec.Attach(&kernel);
  kernel.ScheduleAt(42, [&rec]() {
    rec.Instant(SiteId(1), obs::Track::kVm, "vm.born", 7, "vm", 7, "amount", 3);
  });
  kernel.Run();
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].ts, 42);
  EXPECT_EQ(rec.events()[0].site, 1u);
  EXPECT_EQ(rec.FirstTimeOf("vm.born", 7), 42);
  EXPECT_EQ(rec.FirstTimeOf("vm.born", 8), -1);
  EXPECT_EQ(rec.EventsFor(7).size(), 1u);
}

TEST(TraceRecorderTest, CapsAndCountsDrops) {
  obs::TraceRecorder rec(/*max_events=*/2);
  rec.Instant(SiteId(0), obs::Track::kNet, "net.send");
  rec.Instant(SiteId(0), obs::Track::kNet, "net.send");
  rec.Instant(SiteId(0), obs::Track::kNet, "net.send");
  EXPECT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(TraceRecorderTest, PerfettoJsonHasMetadataAndSpans) {
  obs::TraceRecorder rec;
  rec.Begin(SiteId(0), obs::Track::kTxn, "txn", 99, "ops", 1);
  rec.End(SiteId(0), obs::Track::kTxn, "txn", 99, "outcome", 0);
  std::string json = rec.ToPerfettoJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"99\""), std::string::npos)
      << "async spans must correlate by id";
}

// ---- End-to-end contracts -------------------------------------------------------

chaos::ChaosCase SmallCase() {
  chaos::ChaosCase c;
  c.seed = 11;
  c.workload.sites = 3;
  c.workload.txns = 30;
  c.workload.redist_permille = 300;  // plenty of Vm traffic to trace
  c.workload.loss_permille = 30;
  return c;
}

TEST(TraceGoldenTest, FixedSeedTraceIsByteStableAcrossRuns) {
  chaos::ChaosCase c = SmallCase();
  chaos::RunOptions opts;

  obs::TraceRecorder rec1;
  opts.trace = &rec1;
  chaos::RunResult r1 = chaos::RunCase(c, opts);

  obs::TraceRecorder rec2;
  opts.trace = &rec2;
  chaos::RunResult r2 = chaos::RunCase(c, opts);

  ASSERT_TRUE(r1.ok) << r1.violation;
  EXPECT_GT(rec1.events().size(), 0u) << "a traced run must record events";
  EXPECT_EQ(rec1.dropped(), 0u);
  std::string j1 = rec1.ToPerfettoJson();
  std::string j2 = rec2.ToPerfettoJson();
  EXPECT_EQ(j1, j2) << "same case, same bytes — the golden-file contract";
  EXPECT_EQ(r1.digest, r2.digest);
}

TEST(TraceGoldenTest, TracingDoesNotPerturbTheRun) {
  chaos::ChaosCase c = SmallCase();
  chaos::RunOptions plain;
  chaos::RunResult untraced = chaos::RunCase(c, plain);

  obs::TraceRecorder rec;
  chaos::RunOptions traced_opts;
  traced_opts.trace = &rec;
  chaos::RunResult traced = chaos::RunCase(c, traced_opts);

  EXPECT_EQ(untraced.digest, traced.digest)
      << "recording must never touch the kernel queue, RNG or counters";
  EXPECT_EQ(untraced.events_executed, traced.events_executed);
  EXPECT_EQ(untraced.committed, traced.committed);
}

TEST(ExplainViolationTest, PlantedViolationNamesTheOffendingVm) {
  chaos::ChaosCase c = SmallCase();
  obs::TraceRecorder rec;
  chaos::RunOptions opts;
  opts.trace = &rec;
  opts.planted_violation_at_us = 200'000;
  chaos::RunResult r = chaos::RunCase(c, opts);

  ASSERT_FALSE(r.ok) << "the planted Vm-creation must violate conservation";
  ASSERT_FALSE(r.explanation.empty());
  VmId planted = vm::MakeVmId(SiteId(0), (uint64_t{1} << 40) + 1);
  EXPECT_NE(r.explanation.find("vm " + planted.ToString()), std::string::npos)
      << r.explanation;
  EXPECT_NE(r.explanation.find("no vm.born trace event"), std::string::npos)
      << "the planted record bypassed the Vm layer and the trace proves it: "
      << r.explanation;
}

// ---- PartitionInjector heal clamp ----------------------------------------------

TEST(PartitionInjectorTest, FinalHealIsClampedInsideTheWindow) {
  std::vector<ItemId> items;
  core::Catalog catalog = bench::MakeCountCatalog(1, 100, &items);
  system::ClusterOptions copts;
  copts.num_sites = 3;
  copts.seed = 5;
  system::Cluster cluster(&catalog, copts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  // Split at t=10ms with a nominal 300ms duration but a window ending at
  // t=20ms: the heal must land at 20ms, not 310ms.
  bench::PartitionInjector injector(&adapter, 10'000, 300'000, 42);
  injector.Start(20'000);
  cluster.RunFor(15'000);
  EXPECT_EQ(injector.splits(), 1u);
  EXPECT_TRUE(cluster.network().partition().IsPartitioned());
  cluster.RunFor(10'000);  // now t=25ms, past the window
  EXPECT_TRUE(injector.healed_at_end()) << injector.splits() << " splits, "
                                        << injector.heals() << " heals";
  EXPECT_FALSE(cluster.network().partition().IsPartitioned())
      << "the injector must not leave a partition standing past until_";
}

}  // namespace
}  // namespace dvp
