// Tests for the Virtual Message layer: exactly-once value transfer under
// loss, duplication, crashes; outbox/accepted-set reconstruction; the §5
// full-read gate on outstanding Vm.
#include <gtest/gtest.h>

#include "system/cluster.h"
#include "vm/vm_manager.h"

namespace dvp {
namespace {

using core::CountDomain;

TEST(VmIdTest, PackUnpackRoundTrip) {
  VmId id = vm::MakeVmId(SiteId(5), 123456);
  EXPECT_EQ(vm::VmIdSite(id), SiteId(5));
  EXPECT_EQ(vm::VmIdCounter(id), 123456u);
  EXPECT_NE(vm::MakeVmId(SiteId(1), 7), vm::MakeVmId(SiteId(2), 7));
}

class VmFixture : public ::testing::Test {
 protected:
  VmFixture() { Build(net::LinkParams{}); }

  void Build(net::LinkParams link) {
    catalog_ = std::make_unique<core::Catalog>();
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), 100);
    system::ClusterOptions opts;
    opts.num_sites = 2;
    opts.seed = 77;
    opts.link = link;
    cluster_ = std::make_unique<system::Cluster>(catalog_.get(), opts);
    cluster_->BootstrapEven();
  }

  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(VmFixture, SendValueMovesValueExactlyOnce) {
  ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 20).ok());
  // The instant the Vm is created, the sender's fragment is debited.
  EXPECT_EQ(cluster_->site(SiteId(0)).LocalValue(item_), 30);
  auto audit = cluster_->Audit(item_);
  EXPECT_EQ(audit.in_flight, 20);
  EXPECT_EQ(audit.total(), 100);

  cluster_->RunFor(1'000'000);
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 70);
  audit = cluster_->Audit(item_);
  EXPECT_EQ(audit.in_flight, 0);
  EXPECT_EQ(audit.live_vms, 0u);
  EXPECT_EQ(audit.total(), 100);
}

TEST_F(VmFixture, SendValueValidatesArguments) {
  auto& site = cluster_->site(SiteId(0));
  EXPECT_EQ(site.SendValue(SiteId(1), item_, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(site.SendValue(SiteId(1), item_, -5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(site.SendValue(SiteId(1), item_, 51).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(site.SendValue(SiteId(1), ItemId(99), 5).code(),
            StatusCode::kNotFound);
}

TEST_F(VmFixture, SurvivesHeavyLossAndDuplication) {
  net::LinkParams nasty;
  nasty.loss_prob = 0.7;
  nasty.duplicate_prob = 0.3;
  Build(nasty);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 2).ok());
  }
  cluster_->RunFor(60'000'000);  // many RTOs
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 70);
  EXPECT_EQ(cluster_->site(SiteId(0)).LocalValue(item_), 30);
  auto audit = cluster_->Audit(item_);
  EXPECT_EQ(audit.total(), 100);
  EXPECT_EQ(audit.live_vms, 0u);
  // Duplicates were recognised, not double-credited.
  CounterSet counters = cluster_->AggregateCounters();
  EXPECT_EQ(counters.Get("vm.accepted"), 10u);
}

TEST_F(VmFixture, ValueParkedInFlightDuringPartitionThenDelivered) {
  ASSERT_TRUE(cluster_->Partition({{SiteId(0)}, {SiteId(1)}}).ok());
  ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 15).ok());
  cluster_->RunFor(5'000'000);
  // Not delivered, not lost: the Vm holds the value.
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 50);
  auto audit = cluster_->Audit(item_);
  EXPECT_EQ(audit.in_flight, 15);
  EXPECT_EQ(audit.total(), 100);

  cluster_->Heal();
  cluster_->RunFor(5'000'000);
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 65);
  EXPECT_EQ(cluster_->Audit(item_).in_flight, 0);
}

TEST_F(VmFixture, SenderCrashDoesNotLoseInFlightValue) {
  ASSERT_TRUE(cluster_->Partition({{SiteId(0)}, {SiteId(1)}}).ok());
  ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 15).ok());
  cluster_->CrashSite(SiteId(0));
  cluster_->Heal();
  cluster_->RunFor(1'000'000);
  // Receiver got nothing (sender's transport died before any delivery).
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 50);
  EXPECT_EQ(cluster_->Audit(item_).in_flight, 15);

  // Recovery re-arms the outstanding Vm from the log; delivery completes.
  cluster_->RecoverSite(SiteId(0));
  cluster_->RunFor(5'000'000);
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 65);
  EXPECT_EQ(cluster_->Audit(item_).total(), 100);
}

TEST_F(VmFixture, ReceiverCrashAfterAcceptDeduplicatesRetransmission) {
  // Lossy ack path: force the sender to keep retransmitting, then crash the
  // receiver after it accepted. On recovery, the accepted-set is rebuilt
  // from the log, so the retransmissions are recognised as duplicates.
  net::LinkParams link;
  Build(link);
  ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 10).ok());
  cluster_->RunFor(10'000);  // transfer delivered & accepted; ack in flight
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 60);

  cluster_->CrashSite(SiteId(1));
  cluster_->RecoverSite(SiteId(1));
  cluster_->RunFor(5'000'000);
  // Value credited exactly once despite crash + any retransmissions.
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 60);
  EXPECT_EQ(cluster_->Audit(item_).total(), 100);
  EXPECT_EQ(cluster_->Audit(item_).live_vms, 0u);
}

TEST_F(VmFixture, ExactlyOnceUnderLossDupReorderAndCrashRestart) {
  // The full gauntlet: lossy, duplicating, reordering links, with both sites
  // crashing and restarting mid-stream. Conservation and exactly-once must
  // hold unconditionally.
  net::LinkParams nasty;
  nasty.loss_prob = 0.4;
  nasty.duplicate_prob = 0.25;
  nasty.jitter_mean_us = 2'000;  // reorders packets
  Build(nasty);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 3).ok());
  }
  cluster_->RunFor(2'000'000);
  cluster_->CrashSite(SiteId(1));  // receiver dies mid-stream
  cluster_->RecoverSite(SiteId(1));
  cluster_->RunFor(2'000'000);  // recovery is asynchronous; let it finish
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster_->site(SiteId(1)).SendValue(SiteId(0), item_, 1).ok());
  }
  cluster_->RunFor(2'000'000);
  cluster_->CrashSite(SiteId(0));  // sender dies with acks in flight
  cluster_->RecoverSite(SiteId(0));
  cluster_->RunFor(120'000'000);  // covers recovery + every backoff round

  auto audit = cluster_->Audit(item_);
  EXPECT_EQ(audit.total(), 100);
  EXPECT_EQ(audit.in_flight, 0);
  EXPECT_EQ(audit.live_vms, 0u);
  // 50 - 8*3 + 4*1 = 30 / 50 + 24 - 4 = 70: every Vm credited exactly once.
  EXPECT_EQ(cluster_->site(SiteId(0)).LocalValue(item_), 30);
  EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 70);
  // Lifetime accept counts survive the crashes (rebuilt from the log)...
  EXPECT_EQ(cluster_->site(SiteId(1)).vm()->accept_count(), 8u);
  EXPECT_EQ(cluster_->site(SiteId(0)).vm()->accept_count(), 4u);
  // ...while the in-memory dedup set stays a bounded window, not a lifetime
  // archive.
  EXPECT_LE(cluster_->site(SiteId(1)).vm()->accepted_entries(), 8u);
  EXPECT_LE(cluster_->site(SiteId(0)).vm()->accepted_entries(), 4u);
}

TEST_F(VmFixture, AcceptedSetStaysBoundedOnceAcked) {
  // A long ping-pong stream: each transfer's piggybacked closed_below
  // watermark lets the receiver prune counters below it, so the accepted-set
  // footprint is O(outstanding), not O(lifetime).
  const int kRounds = 50;
  for (int i = 0; i < kRounds; ++i) {
    SiteId src = SiteId(uint32_t(i % 2));
    SiteId dst = SiteId(uint32_t(1 - i % 2));
    ASSERT_TRUE(cluster_->site(src).SendValue(dst, item_, 1).ok());
    cluster_->RunFor(1'000'000);
    EXPECT_LE(cluster_->site(dst).vm()->accepted_entries(), 4u);
  }
  EXPECT_EQ(cluster_->site(SiteId(0)).vm()->accept_count() +
                cluster_->site(SiteId(1)).vm()->accept_count(),
            uint64_t(kRounds));
  EXPECT_LE(cluster_->site(SiteId(0)).vm()->accepted_entries_peak(), 8u);
  EXPECT_LE(cluster_->site(SiteId(1)).vm()->accepted_entries_peak(), 8u);
  EXPECT_EQ(cluster_->Audit(item_).total(), 100);
}

TEST_F(VmFixture, OutstandingVmBlocksFullReadHonor) {
  // Site 0 has an unacked Vm for the item (receiver partitioned away), so it
  // must refuse read requests for it (§5's N_M = 0 gate).
  ASSERT_TRUE(cluster_->Partition({{SiteId(0)}, {SiteId(1)}}).ok());
  ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 5).ok());
  EXPECT_TRUE(cluster_->site(SiteId(0)).vm()->HasOutstandingFor(item_));

  cluster_->Heal();
  cluster_->RunFor(5'000'000);
  EXPECT_FALSE(cluster_->site(SiteId(0)).vm()->HasOutstandingFor(item_));
}

TEST_F(VmFixture, PrefetchRedistributesWithoutLocks) {
  cluster_->site(SiteId(0)).Prefetch(item_, 30);
  cluster_->RunFor(2'000'000);
  // Both other... the single other site shipped what was asked.
  EXPECT_GE(cluster_->site(SiteId(0)).LocalValue(item_), 80);
  EXPECT_EQ(cluster_->Audit(item_).total(), 100);
  EXPECT_EQ(cluster_->AggregateCounters().Get("req.prefetch"), 1u);
}

TEST_F(VmFixture, ZeroValuePrefetchIsIgnored) {
  cluster_->site(SiteId(0)).Prefetch(item_, 0);
  cluster_->RunFor(1'000'000);
  EXPECT_EQ(cluster_->AggregateCounters().Get("req.prefetch"), 0u);
}

}  // namespace
}  // namespace dvp
