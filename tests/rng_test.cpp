// Unit and property tests for the deterministic RNG stack.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/rng.h"

namespace dvp {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng a(0), b(0);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), 0u);  // overwhelmingly likely
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng parent(7);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(2);
  Rng f1_again = Rng(7).Fork(1);
  EXPECT_EQ(f1.NextU64(), f1_again.NextU64());
  EXPECT_NE(f1.NextU64(), f2.NextU64());
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, NextBoundedOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(9);
  int trues = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) trues += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(double(trues) / kDraws, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(50.0);
  EXPECT_NEAR(sum / kDraws, 50.0, 1.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.02);
}

// ---- Zipf ---------------------------------------------------------------------

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(1);
  ZipfGenerator zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[zipf.Next(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10'000, 600);
}

struct ZipfCase {
  uint64_t n;
  double theta;
};

class ZipfDistributionTest : public ::testing::TestWithParam<ZipfCase> {};

TEST_P(ZipfDistributionTest, MatchesAnalyticFrequencies) {
  const ZipfCase& c = GetParam();
  Rng rng(23);
  ZipfGenerator zipf(c.n, c.theta);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next(rng)];

  double norm = 0;
  for (uint64_t k = 0; k < c.n; ++k) norm += 1.0 / std::pow(double(k + 1), c.theta);
  for (uint64_t k = 0; k < std::min<uint64_t>(c.n, 4); ++k) {
    double expected = (1.0 / std::pow(double(k + 1), c.theta)) / norm;
    double observed = double(counts[k]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01)
        << "rank " << k << " n=" << c.n << " theta=" << c.theta;
  }
}

TEST_P(ZipfDistributionTest, StaysInRange) {
  const ZipfCase& c = GetParam();
  Rng rng(29);
  ZipfGenerator zipf(c.n, c.theta);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.Next(rng), c.n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfDistributionTest,
    ::testing::Values(ZipfCase{4, 0.5}, ZipfCase{4, 0.99}, ZipfCase{4, 1.4},
                      ZipfCase{16, 0.8}, ZipfCase{16, 2.0},
                      ZipfCase{1000, 0.99}, ZipfCase{1, 1.0},
                      // Above the exact-table limit (4096) with theta >= 1:
                      // the regime where the Gray et al. approximation
                      // diverges and which used to be assert-only (NDEBUG
                      // builds sampled garbage). Must take the exact path.
                      ZipfCase{100'000, 1.2}, ZipfCase{50'000, 1.0}));

// Regression: large n with theta >= 1 used to fall through to the
// approximation whose 1/(1-theta) exponent is undefined at theta = 1 and
// sign-flipped beyond it. Check the head mass against the analytic CDF.
TEST(ZipfTest, LargeNThetaAtLeastOneMatchesHeadMass) {
  constexpr uint64_t kN = 100'000;
  constexpr double kTheta = 1.2;
  Rng rng(37);
  ZipfGenerator zipf(kN, kTheta);
  constexpr int kDraws = 200'000;
  constexpr uint64_t kHead = 10;
  int head = 0;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t k = zipf.Next(rng);
    ASSERT_LT(k, kN);
    if (k < kHead) ++head;
  }
  double norm = 0, head_mass = 0;
  for (uint64_t k = 0; k < kN; ++k) {
    double p = 1.0 / std::pow(double(k + 1), kTheta);
    norm += p;
    if (k < kHead) head_mass += p;
  }
  EXPECT_NEAR(double(head) / kDraws, head_mass / norm, 0.01);
}

// The million-item generator bench_scale leans on: fixed seed, fixed stream.
TEST(ZipfTest, MillionItemGeneratorIsDeterministicAndInRange) {
  constexpr uint64_t kN = 1'000'000;
  Rng a(41), b(41);
  ZipfGenerator za(kN, 0.99), zb(kN, 0.99);
  for (int i = 0; i < 10'000; ++i) {
    uint64_t va = za.Next(a);
    ASSERT_LT(va, kN);
    ASSERT_EQ(va, zb.Next(b));
  }
}

TEST(SampleWeightedTest, RespectsWeights) {
  Rng rng(31);
  std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40'000; ++i) ++counts[SampleWeighted(rng, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[2]) / double(counts[0]), 3.0, 0.3);
}

// Regression: an all-zero weight vector used to fall off the scan and
// return the LAST index every time (a silent bias that only release builds
// hit — the debug assert fired first). It now falls back to uniform.
TEST(SampleWeightedTest, AllZeroWeightsFallBackToUniform) {
  Rng rng(43);
  std::vector<double> weights{0.0, 0.0, 0.0, 0.0};
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) {
    size_t k = SampleWeighted(rng, weights);
    ASSERT_LT(k, weights.size());
    ++counts[k];
  }
  for (int c : counts) EXPECT_NEAR(c, kDraws / 4, kDraws / 20);
}

TEST(SampleWeightedTest, NonFiniteTotalFallsBackToUniform) {
  Rng rng(47);
  std::vector<double> weights{1.0, std::numeric_limits<double>::infinity(),
                              2.0};
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(SampleWeighted(rng, weights), weights.size());
  }
}

TEST(SampleWeightedTest, SingleElementAlwaysZero) {
  Rng rng(53);
  std::vector<double> weights{0.0};  // zero mass, one slot: still index 0
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleWeighted(rng, weights), 0u);
}

}  // namespace
}  // namespace dvp
