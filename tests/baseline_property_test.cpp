// Property tests for the traditional baselines: quorum intersection reads,
// 2PC atomicity across replicas under chaotic partitions, and escrow
// admission bounds under random loads. The baselines must be *correct* for
// the experiment comparisons against them to mean anything.
#include <gtest/gtest.h>

#include "baseline/escrow.h"
#include "baseline/twopc.h"
#include "common/rng.h"
#include "dvpcore/catalog.h"

namespace dvp {
namespace {

using baseline::EscrowSite;
using baseline::ReplicaPolicy;
using baseline::TwoPcCluster;
using baseline::TwoPcOptions;
using core::CountDomain;
using txn::TxnOp;
using txn::TxnResult;
using txn::TxnSpec;

class TwoPcChaosTest : public ::testing::TestWithParam<uint64_t> {};

// Under random serial traffic with random partitions and heals, committed
// state must stay linearisable: any quorum read returns exactly the value
// implied by the committed updates before it, and after healing all
// replicas converge to the same latest version.
TEST_P(TwoPcChaosTest, QuorumReadsLinearizeAndReplicasConverge) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("x", CountDomain::Instance(), 10'000);
  TwoPcOptions opts;
  opts.num_sites = 5;
  opts.seed = GetParam();
  opts.policy = ReplicaPolicy::kQuorum;
  opts.coordinator_timeout_us = 150'000;
  TwoPcCluster cluster(&catalog, opts);
  cluster.Bootstrap();

  Rng rng(GetParam() * 71 + 3);
  core::Value committed = 10'000;

  for (int step = 0; step < 60; ++step) {
    // Random fault state.
    double roll = rng.NextDouble();
    if (roll < 0.15) {
      std::vector<SiteId> a, b;
      for (uint32_t s = 0; s < 5; ++s) {
        (rng.NextBool(0.5) ? a : b).push_back(SiteId(s));
      }
      if (!a.empty() && !b.empty()) (void)cluster.Partition({a, b});
    } else if (roll < 0.30) {
      cluster.Heal();
    }

    // One transaction at a time (serial): its effect is deterministic.
    SiteId at(static_cast<uint32_t>(rng.NextBounded(5)));
    bool is_read = rng.NextBool(0.3);
    TxnSpec spec;
    core::Value amount = rng.NextInt(1, 9);
    if (is_read) {
      spec.ops = {TxnOp::ReadFull(item)};
    } else {
      spec.ops = {rng.NextBool(0.5) ? TxnOp::Decrement(item, amount)
                                    : TxnOp::Increment(item, amount)};
    }
    TxnResult out;
    bool done = false;
    auto submitted = cluster.Submit(at, spec, [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    ASSERT_TRUE(submitted.ok());
    cluster.RunFor(2'000'000);
    ASSERT_TRUE(done) << "2PC coordinator failed to decide";
    if (out.committed()) {
      if (is_read) {
        EXPECT_EQ(out.read_values.at(item), committed)
            << "quorum read missed a committed update (step " << step << ")";
      } else {
        committed += spec.ops[0].kind == TxnOp::Kind::kIncrement
                         ? spec.ops[0].amount
                         : -spec.ops[0].amount;
      }
    }
  }

  // Heal and converge: the latest version must equal the committed value.
  cluster.Heal();
  cluster.RunFor(3'000'000);
  EXPECT_EQ(cluster.AuthoritativeValue(item), committed);
  EXPECT_EQ(cluster.BlockedParticipants(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoPcChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(TwoPcAtomicityTest, WriteAllReplicasAgreeAfterConcurrentLoad) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("x", CountDomain::Instance(), 5'000);
  TwoPcOptions opts;
  opts.num_sites = 4;
  opts.seed = 17;
  opts.policy = ReplicaPolicy::kWriteAll;
  TwoPcCluster cluster(&catalog, opts);
  cluster.Bootstrap();

  Rng rng(29);
  core::Value committed = 5'000;
  int decided = 0, submitted_n = 0;
  for (int i = 0; i < 100; ++i) {
    TxnSpec spec;
    core::Value amount = rng.NextInt(1, 5);
    bool down = rng.NextBool(0.5);
    spec.ops = {down ? TxnOp::Decrement(item, amount)
                     : TxnOp::Increment(item, amount)};
    ++submitted_n;
    (void)cluster.Submit(
        SiteId(uint32_t(rng.NextBounded(4))), spec,
        [&, down, amount](const TxnResult& r) {
          ++decided;
          if (r.committed()) committed += down ? -amount : amount;
        });
    cluster.RunFor(rng.NextInt(1'000, 20'000));
  }
  cluster.RunFor(3'000'000);
  ASSERT_EQ(decided, submitted_n);
  // Atomicity: every replica holds exactly the committed value.
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster.ReplicaValue(SiteId(s), item), committed)
        << "replica " << s << " diverged";
  }
}

class EscrowPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EscrowPropertyTest, AdmissionNeverOverdrawsUnderRandomLoad) {
  sim::Kernel kernel;
  EscrowSite escrow(&kernel, EscrowSite::Mode::kEscrow, 200, 8'000);
  Rng rng(GetParam() * 5 + 1);
  SimTime t = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng.NextInt(1, 4'000);
    core::Value m = rng.NextInt(1, 9);
    bool down = rng.NextBool(0.6);
    kernel.ScheduleAt(t, [&escrow, m, down]() {
      // The invariant: committed - reserved >= 0 at admission time, so the
      // committed value can never dip below zero.
      if (down) {
        escrow.Decrement(m, nullptr);
      } else {
        escrow.Increment(m, nullptr);
      }
      ASSERT_GE(escrow.committed_value() - escrow.reserved_decrements(), 0);
    });
  }
  kernel.Run();
  EXPECT_GE(escrow.committed_value(), 0);
  EXPECT_EQ(escrow.reserved_decrements(), 0);
  EXPECT_GT(escrow.stats().committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscrowPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dvp
