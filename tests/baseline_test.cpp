// Correctness and blocking-behaviour tests for the traditional baselines:
// 2PC over replicated data (write-all and quorum), primary copy, and the
// single-site escrow method.
#include <gtest/gtest.h>

#include "baseline/escrow.h"
#include "baseline/primary_copy.h"
#include "baseline/twopc.h"
#include "dvpcore/catalog.h"

namespace dvp {
namespace {

using baseline::EscrowSite;
using baseline::PrimaryCopyCluster;
using baseline::PrimaryCopyOptions;
using baseline::ReplicaPolicy;
using baseline::TwoPcCluster;
using baseline::TwoPcOptions;
using core::CountDomain;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

TxnSpec Decr(ItemId item, core::Value m) {
  TxnSpec s;
  s.ops = {TxnOp::Decrement(item, m)};
  return s;
}

class TwoPcTest : public ::testing::Test {
 protected:
  TwoPcTest() {
    item_ = catalog_.AddItem("stock", CountDomain::Instance(), 100);
  }

  void MakeCluster(ReplicaPolicy policy) {
    TwoPcOptions opts;
    opts.num_sites = 4;
    opts.seed = 11;
    opts.policy = policy;
    cluster_ = std::make_unique<TwoPcCluster>(&catalog_, opts);
    cluster_->Bootstrap();
  }

  TxnResult SubmitAndRun(SiteId at, const TxnSpec& spec,
                         SimTime run_us = 3'000'000) {
    TxnResult out;
    bool done = false;
    auto ok = cluster_->Submit(at, spec, [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(ok.ok());
    cluster_->RunFor(run_us);
    EXPECT_TRUE(done) << "2PC coordinator never decided";
    return out;
  }

  core::Catalog catalog_;
  ItemId item_;
  std::unique_ptr<TwoPcCluster> cluster_;
};

TEST_F(TwoPcTest, WriteAllCommitUpdatesEveryReplica) {
  MakeCluster(ReplicaPolicy::kWriteAll);
  TxnResult r = SubmitAndRun(SiteId(0), Decr(item_, 10));
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster_->ReplicaValue(SiteId(s), item_), 90);
  }
}

TEST_F(TwoPcTest, InsufficientValueAborts) {
  MakeCluster(ReplicaPolicy::kWriteAll);
  TxnResult r = SubmitAndRun(SiteId(1), Decr(item_, 101));
  EXPECT_NE(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->ReplicaValue(SiteId(0), item_), 100);
}

TEST_F(TwoPcTest, WriteAllIsUnavailableDuringPartition) {
  MakeCluster(ReplicaPolicy::kWriteAll);
  ASSERT_TRUE(
      cluster_->Partition({{SiteId(0), SiteId(1)}, {SiteId(2), SiteId(3)}})
          .ok());
  TxnResult r = SubmitAndRun(SiteId(0), Decr(item_, 1));
  EXPECT_NE(r.outcome, TxnOutcome::kCommitted)
      << "write-all must not commit in a partition";
}

TEST_F(TwoPcTest, QuorumCommitsInMajoritySideOnly) {
  MakeCluster(ReplicaPolicy::kQuorum);
  ASSERT_TRUE(
      cluster_->Partition({{SiteId(0), SiteId(1), SiteId(2)}, {SiteId(3)}})
          .ok());
  EXPECT_EQ(SubmitAndRun(SiteId(0), Decr(item_, 5)).outcome,
            TxnOutcome::kCommitted);
  EXPECT_NE(SubmitAndRun(SiteId(3), Decr(item_, 5)).outcome,
            TxnOutcome::kCommitted);
}

TEST_F(TwoPcTest, QuorumSerialUpdatesReadLatestVersion) {
  MakeCluster(ReplicaPolicy::kQuorum);
  ASSERT_EQ(SubmitAndRun(SiteId(0), Decr(item_, 10)).outcome,
            TxnOutcome::kCommitted);
  ASSERT_EQ(SubmitAndRun(SiteId(2), Decr(item_, 20)).outcome,
            TxnOutcome::kCommitted);
  TxnSpec read;
  read.ops = {TxnOp::ReadFull(item_)};
  TxnResult r = SubmitAndRun(SiteId(3), read);
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(r.read_values.at(item_), 70);
}

TEST_F(TwoPcTest, ParticipantBlocksWhenPartitionHitsUncertaintyWindow) {
  // Slow the links so we can partition mid-protocol deterministically.
  TwoPcOptions opts;
  opts.num_sites = 4;
  opts.seed = 13;
  opts.policy = ReplicaPolicy::kWriteAll;
  opts.link = net::LinkParams::Synchronous(10'000);  // 10ms per hop
  cluster_ = std::make_unique<TwoPcCluster>(&catalog_, opts);
  cluster_->Bootstrap();

  bool decided = false;
  ASSERT_TRUE(cluster_
                  ->Submit(SiteId(0), Decr(item_, 5),
                           [&](const TxnResult&) { decided = true; })
                  .ok());
  // Locks at t=10ms, grants back at t=20ms, prepares arrive t=30ms, votes
  // back t=40ms. Partition at t=35ms: participants have voted (prepared),
  // coordinator never hears all votes... actually votes are in flight; cut
  // the network right after prepare-receipt so votes are lost.
  cluster_->RunFor(32'000);
  ASSERT_TRUE(
      cluster_->Partition({{SiteId(0)}, {SiteId(1), SiteId(2), SiteId(3)}})
          .ok());
  cluster_->RunFor(500'000);

  // Participants 1..3 are prepared and cannot learn the decision: blocked,
  // holding locks, polling.
  EXPECT_GT(cluster_->BlockedParticipants(), 0u);
  CounterSet counters = cluster_->AggregateCounters();
  EXPECT_GT(counters.Get("2pc.blocked.poll"), 0u);

  // Healing lets the termination protocol finish and unblock everyone.
  cluster_->Heal();
  cluster_->RunFor(1'000'000);
  EXPECT_EQ(cluster_->BlockedParticipants(), 0u);
  EXPECT_TRUE(decided);
  EXPECT_GT(cluster_->blocked_time().count(), 0u);
}

TEST(PrimaryCopyTest, RoutesToPrimaryAndCommits) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("stock", CountDomain::Instance(), 50);
  PrimaryCopyOptions opts;
  opts.num_sites = 4;
  PrimaryCopyCluster cluster(&catalog, opts);
  cluster.Bootstrap();
  ASSERT_EQ(cluster.PrimaryOf(item), SiteId(0));

  TxnResult out;
  bool done = false;
  ASSERT_TRUE(cluster
                  .Submit(SiteId(2), Decr(item, 7),
                          [&](const TxnResult& r) {
                            out = r;
                            done = true;
                          })
                  .ok());
  cluster.RunFor(1'000'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(out.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.PrimaryValue(item), 43);
}

TEST(PrimaryCopyTest, UnreachablePrimaryMeansUnavailable) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("stock", CountDomain::Instance(), 50);
  PrimaryCopyOptions opts;
  opts.num_sites = 4;
  opts.request_timeout_us = 100'000;
  PrimaryCopyCluster cluster(&catalog, opts);
  cluster.Bootstrap();
  ASSERT_TRUE(
      cluster.Partition({{SiteId(0), SiteId(1)}, {SiteId(2), SiteId(3)}})
          .ok());

  TxnResult out;
  bool done = false;
  ASSERT_TRUE(cluster
                  .Submit(SiteId(2), Decr(item, 1),
                          [&](const TxnResult& r) {
                            out = r;
                            done = true;
                          })
                  .ok());
  cluster.RunFor(1'000'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(out.outcome, TxnOutcome::kAbortTimeout);
  // Same-side clients still work.
  bool done2 = false;
  ASSERT_TRUE(cluster
                  .Submit(SiteId(1), Decr(item, 1),
                          [&](const TxnResult& r) {
                            EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
                            done2 = true;
                          })
                  .ok());
  cluster.RunFor(1'000'000);
  EXPECT_TRUE(done2);
}

TEST(EscrowTest, EscrowAdmitsConcurrentDecrements) {
  sim::Kernel kernel;
  EscrowSite escrow(&kernel, EscrowSite::Mode::kEscrow, 100, 10'000);
  int ok = 0, bad = 0;
  for (int i = 0; i < 5; ++i) {
    escrow.Decrement(10, [&](Status s) { s.ok() ? ++ok : ++bad; });
  }
  kernel.Run();
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(bad, 0);
  EXPECT_EQ(escrow.committed_value(), 50);
}

TEST(EscrowTest, EscrowRefusesOverCommitment) {
  sim::Kernel kernel;
  EscrowSite escrow(&kernel, EscrowSite::Mode::kEscrow, 25, 10'000);
  int ok = 0, bad = 0;
  for (int i = 0; i < 5; ++i) {
    escrow.Decrement(10, [&](Status s) { s.ok() ? ++ok : ++bad; });
  }
  kernel.Run();
  EXPECT_EQ(ok, 2);  // 10 + 10 admitted; third would risk going below zero
  EXPECT_EQ(bad, 3);
  EXPECT_EQ(escrow.committed_value(), 5);
}

TEST(EscrowTest, ExclusiveLockSerialisesAndAborts) {
  sim::Kernel kernel;
  EscrowSite lock(&kernel, EscrowSite::Mode::kExclusive, 100, 10'000);
  int ok = 0, bad = 0;
  for (int i = 0; i < 5; ++i) {
    lock.Decrement(10, [&](Status s) { s.ok() ? ++ok : ++bad; });
  }
  kernel.Run();
  EXPECT_EQ(ok, 1) << "only the lock holder proceeds";
  EXPECT_EQ(bad, 4);
}

}  // namespace
}  // namespace dvp
