// The chaos harness's own contract: a run is a pure function of its
// ChaosCase (determinism), the mid-flight oracles actually catch invariant
// violations (proved with a planted one), and the shrinker reduces a failing
// case to a minimal paste-able reproducer.
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "chaos/oracles.h"
#include "chaos/shrink.h"
#include "vm/vm_manager.h"
#include "wal/stable_storage.h"

namespace dvp {
namespace {

TEST(ChaosDeterminism, SameCaseSameDigest) {
  for (uint64_t seed : {3u, 9u, 21u}) {
    chaos::ChaosCase c = chaos::MakeSwarmCase(seed);
    chaos::RunResult a = chaos::RunCase(c);
    chaos::RunResult b = chaos::RunCase(c);
    EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
    EXPECT_EQ(a.events_executed, b.events_executed);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.violation, b.violation);
    EXPECT_EQ(a.trace, b.trace);
  }
}

TEST(ChaosDeterminism, DifferentPerturbationSeedChangesInterleaving) {
  chaos::ChaosCase c = chaos::MakeSwarmCase(4);
  c.max_jitter_us = 300;  // delivery jitter guarantees a different schedule
  c.perturb_seed = 1;
  chaos::RunResult a = chaos::RunCase(c);
  c.perturb_seed = 2;
  chaos::RunResult b = chaos::RunCase(c);
  // Both interleavings must satisfy the invariants; the digests genuinely
  // explore different executions.
  EXPECT_TRUE(a.ok) << a.violation;
  EXPECT_TRUE(b.ok) << b.violation;
  EXPECT_NE(a.digest, b.digest);
}

TEST(ChaosDeterminism, PlanLiteralRoundTrips) {
  chaos::ChaosCase c = chaos::MakeSwarmCase(7);
  std::string lit = c.ToLiteral();
  EXPECT_NE(lit.find("chaos::ChaosCase{"), std::string::npos);
  // Every plan entry appears in the literal.
  for (const chaos::FaultEvent& e : c.plan.events) {
    EXPECT_NE(lit.find(std::to_string(e.at)), std::string::npos);
  }
}

// The acceptance demo of the whole pipeline: plant a conservation violation
// (a Vm-creation record whose value was never debited), watch an oracle
// catch it mid-flight, then shrink the case to (nearly) nothing — the
// violation does not depend on the fault plan at all.
TEST(ChaosPlantedViolation, CaughtByOracleAndShrunk) {
  chaos::ChaosCase c = chaos::MakeSwarmCase(6);
  ASSERT_FALSE(c.plan.events.empty());

  chaos::RunOptions opts;
  opts.planted_violation_at_us = 400'000;
  opts.record_trace = false;
  chaos::RunResult r = chaos::RunCase(c, opts);
  ASSERT_FALSE(r.ok) << "the planted violation must be caught";
  EXPECT_NE(r.violation.find("conserv"), std::string::npos) << r.violation;
  EXPECT_GE(r.violation_time, opts.planted_violation_at_us);

  chaos::ShrinkOptions sopts;
  sopts.run = opts;
  chaos::ShrinkResult sr = chaos::Shrink(c, sopts);
  EXPECT_FALSE(sr.result.ok);
  EXPECT_LE(sr.minimal.plan.events.size(), 3u)
      << "plan should shrink away: the violation is plan-independent";
  EXPECT_LT(sr.minimal.workload.txns, c.workload.txns);
  EXPECT_LE(sr.runs, sopts.max_runs + 1);

  // The emitted literal reproduces: re-running the minimal case still fails.
  chaos::RunResult again = chaos::RunCase(sr.minimal, opts);
  EXPECT_FALSE(again.ok) << sr.minimal.ToLiteral();
}

TEST(ChaosOracles, ExactlyOnceCatchesDoubleAccept) {
  wal::StableStorage s0{SiteId(0)}, s1{SiteId(1)}, s2{SiteId(2)};
  VmId vm = vm::MakeVmId(SiteId(0), 1);
  ItemId item(0);
  wal::VmCreateRec create;
  create.vm = vm;
  create.dst = SiteId(1);
  create.item = item;
  create.amount = 5;
  create.write = wal::FragmentWrite{item, 10, -5, 0};
  s0.Append(wal::LogRecord(create));

  wal::VmAcceptRec accept;
  accept.vm = vm;
  accept.src = SiteId(0);
  accept.item = item;
  accept.amount = 5;
  accept.write = wal::FragmentWrite{item, 5, 5, 0};
  s1.Append(wal::LogRecord(accept));
  EXPECT_TRUE(chaos::CheckExactlyOnce(std::vector<const wal::StableStorage*>{
                                          &s0, &s1, &s2})
                  .ok());

  // The same Vm accepted at a second site: the duplicate filter failed.
  s2.Append(wal::LogRecord(accept));
  Status bad = chaos::CheckExactlyOnce(
      std::vector<const wal::StableStorage*>{&s0, &s1, &s2});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("accepted 2 times"), std::string::npos)
      << bad.message();
}

TEST(ChaosOracles, ExactlyOnceCatchesMismatchedAmount) {
  wal::StableStorage s0{SiteId(0)}, s1{SiteId(1)};
  VmId vm = vm::MakeVmId(SiteId(0), 2);
  ItemId item(0);
  wal::VmCreateRec create;
  create.vm = vm;
  create.dst = SiteId(1);
  create.item = item;
  create.amount = 5;
  s0.Append(wal::LogRecord(create));

  wal::VmAcceptRec accept;
  accept.vm = vm;
  accept.src = SiteId(0);
  accept.item = item;
  accept.amount = 7;  // value changed in flight
  s1.Append(wal::LogRecord(accept));
  Status bad = chaos::CheckExactlyOnce(
      std::vector<const wal::StableStorage*>{&s0, &s1});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("!= created"), std::string::npos)
      << bad.message();
}

TEST(ChaosFaultPlan, GenerationIsDeterministicAndSorted) {
  chaos::PlanSpec spec;
  chaos::FaultPlan a = chaos::GeneratePlan(42, spec);
  chaos::FaultPlan b = chaos::GeneratePlan(42, spec);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.ToLiteral(), b.ToLiteral());
  EXPECT_FALSE(a.events.empty());
  for (size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_LE(a.events[i - 1].at, a.events[i].at);
  }
}

TEST(ChaosFaultPlan, CrashableMaskIsHonoured) {
  chaos::PlanSpec spec;
  spec.crashable_mask = 0b1110;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    chaos::FaultPlan plan = chaos::GeneratePlan(seed, spec);
    for (const chaos::FaultEvent& e : plan.events) {
      if (e.kind == chaos::FaultKind::kCrash ||
          e.kind == chaos::FaultKind::kRecover) {
        EXPECT_NE(e.site, 0u) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace dvp
