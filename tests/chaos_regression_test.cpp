// Pinned chaos reproducers for bugs fixed in earlier PRs. Each case is a
// fixed ChaosCase literal driving the exact mechanism the fix guards, so a
// regression trips an oracle (or the sanitizer build) here first.
#include <gtest/gtest.h>

#include "chaos/harness.h"

namespace dvp {
namespace {

// The read-termination rule must compare (accept, create) counter PAIRS: a
// kReadFull drains Π⁻¹(d) to the reader, and deciding on acceptance counts
// alone terminates reads early when acceptances from one peer race
// creations at another. This case keeps reads, redistribution and Vm
// traffic concurrent under loss/duplication with crash/recovery of the
// non-reading sites.
TEST(ChaosRegression, ReadTerminationCountsAcceptCreatePairs) {
  chaos::ChaosCase c;
  c.seed = 401;
  c.perturb_seed = 4011;
  c.max_jitter_us = 150;
  c.workload.sites = 4;
  c.workload.items = 1;
  c.workload.total = 160;
  c.workload.txns = 60;
  c.workload.gap_us = 25'000;
  c.workload.read_permille = 400;
  c.workload.redist_permille = 300;
  c.workload.max_amount = 20;
  c.workload.timeout_us = 150'000;
  c.workload.loss_permille = 300;
  c.workload.dup_permille = 200;
  c.plan.events = {{200'000, chaos::FaultKind::kCrash, 2, 0},
                   {500'000, chaos::FaultKind::kRecover, 2, 0},
                   {700'000, chaos::FaultKind::kCrash, 3, 0},
                   {1'000'000, chaos::FaultKind::kRecover, 3, 0}};

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << r.violation << "\n" << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
}

// A site crash must invalidate the dead Transport's scheduled retransmission
// and delayed-ack timers (the PR-1 lifetime guard): heavy loss arms many
// timers, then sites crash mid-backoff and are rebuilt. A regression is a
// use-after-free the asan-ubsan ctest pass catches, or a stale-timer double
// delivery the exactly-once oracle catches.
TEST(ChaosRegression, CrashWithArmedTransportTimers) {
  chaos::ChaosCase c;
  c.seed = 402;
  c.workload.sites = 4;
  c.workload.items = 2;
  c.workload.total = 200;
  c.workload.txns = 50;
  c.workload.gap_us = 20'000;
  c.workload.redist_permille = 350;
  c.workload.max_amount = 15;
  c.workload.timeout_us = 150'000;
  c.plan.events = {{50'000, chaos::FaultKind::kLinkLoss, 0, 800},
                   {220'000, chaos::FaultKind::kCrash, 1, 0},
                   {240'000, chaos::FaultKind::kCrash, 2, 0},
                   {600'000, chaos::FaultKind::kRecover, 1, 0},
                   {650'000, chaos::FaultKind::kRecover, 2, 0},
                   {800'000, chaos::FaultKind::kLinkLoss, 0, 0},
                   {900'000, chaos::FaultKind::kCrash, 1, 0},
                   {1'200'000, chaos::FaultKind::kRecover, 1, 0}};

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << r.violation << "\n" << c.ToLiteral();
}

// Timeout skew: one site's timeout counter runs slow (paper §5 step 3 allows
// any local timeout choice). The decision-latency oracle bound widens with
// the skew — but every transaction must still decide within it.
TEST(ChaosRegression, SkewedTimeoutsStillNonBlocking) {
  chaos::ChaosCase c;
  c.seed = 403;
  c.workload.sites = 3;
  c.workload.items = 1;
  c.workload.total = 90;
  c.workload.txns = 40;
  c.workload.gap_us = 30'000;
  c.workload.max_amount = 50;
  c.workload.timeout_us = 120'000;
  c.workload.loss_permille = 400;
  c.plan.events = {{10'000, chaos::FaultKind::kTimeoutSkew, 1, 1900},
                   {10'000, chaos::FaultKind::kTimeoutSkew, 2, 1400},
                   {300'000, chaos::FaultKind::kPartition, 0b001, 0}};

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << r.violation << "\n" << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
  // The bound the harness enforced accounts for the 1.9x skew.
  EXPECT_GE(r.latency_bound_us, 120'000 * 19 / 10);
}

// Stamped snapshot reads under the full adversary: loss, duplication,
// crash/recovery of replying sites, and a partition across the read window.
// The windowed consistent-cut oracle (wired in automatically whenever
// snapshot_permille > 0) must accept every committed snapshot, and the
// balance-certificate retry rounds must never block a decision. The
// force-gated reply rule is what this case leans on: a site that crashes
// after capturing volatile state must NOT have leaked that capture into a
// committed cut.
TEST(ChaosRegression, SnapshotCutsSurviveCrashesAndPartitions) {
  chaos::ChaosCase c;
  c.seed = 404;
  c.perturb_seed = 4041;
  c.max_jitter_us = 200;
  c.workload.sites = 4;
  c.workload.items = 2;
  c.workload.total = 200;
  c.workload.txns = 70;
  c.workload.gap_us = 25'000;
  c.workload.redist_permille = 200;
  c.workload.max_amount = 20;
  c.workload.timeout_us = 150'000;
  c.workload.loss_permille = 250;
  c.workload.dup_permille = 150;
  c.workload.group_commit_records = 6;
  c.workload.group_commit_delay_us = 2'000;
  c.workload.snapshot_permille = 400;
  c.plan.events = {{150'000, chaos::FaultKind::kCrash, 1, 0},
                   {450'000, chaos::FaultKind::kRecover, 1, 0},
                   {600'000, chaos::FaultKind::kPartition, 0b0011, 0},
                   {850'000, chaos::FaultKind::kHeal, 0, 0},
                   {1'000'000, chaos::FaultKind::kCrash, 3, 0},
                   {1'300'000, chaos::FaultKind::kRecover, 3, 0}};

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << r.violation << "\n" << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
  // Determinism: the digest is a pure function of the case.
  chaos::RunResult r2 = chaos::RunCase(c);
  EXPECT_EQ(r.digest, r2.digest);
}

}  // namespace
}  // namespace dvp
