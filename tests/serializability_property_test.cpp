// Property tests for "serializability subject to redistribution" (§6):
// random concurrent histories under Conc1 (checked against exact
// timestamp-order replay, including every full-read value) and under Conc2
// on its synchronous network (commit-order replay with windowed reads).
#include <gtest/gtest.h>

#include "system/cluster.h"
#include "verify/serializability.h"
#include "workload/adapter.h"
#include "workload/generator.h"

namespace dvp {
namespace {

struct SerCase {
  uint64_t seed;
  cc::CcScheme scheme;
  uint32_t items;
  double read_mix;
  double loss;
};

class SerializabilityTest : public ::testing::TestWithParam<SerCase> {};

TEST_P(SerializabilityTest, RandomHistoryReplaysSerially) {
  const SerCase& c = GetParam();

  core::Catalog catalog;
  std::vector<ItemId> items;
  for (uint32_t i = 0; i < c.items; ++i) {
    items.push_back(catalog.AddItem("item" + std::to_string(i),
                                    core::CountDomain::Instance(), 3000));
  }
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = c.seed;
  opts.site.txn.local_compute_us = 1'500;  // lock windows → real contention
  if (c.scheme == cc::CcScheme::kConc2) {
    opts.UseConc2();
  } else {
    opts.link.loss_prob = c.loss;
  }
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = 120;
  w.p_read = c.read_mix;
  w.p_decrement = (1.0 - c.read_mix) * 0.5;
  w.p_increment = (1.0 - c.read_mix) * 0.5;
  w.site_zipf_theta = 0.7;
  w.seed = c.seed * 31 + 5;
  workload::WorkloadDriver driver(&adapter, items, w);

  verify::HistoryChecker checker(&catalog);
  driver.set_on_commit([&](TxnId id, const txn::TxnSpec& spec,
                           const txn::TxnResult& r) {
    checker.RecordCommitAt(adapter.Now(), id, spec, r);
  });

  auto results = driver.Run(15'000'000, 4'000'000);
  ASSERT_GT(results.committed(), 100u) << "history too small to be meaningful";

  std::map<ItemId, core::Value> final_totals;
  for (ItemId item : items) final_totals[item] = cluster.TotalOf(item);

  auto order = c.scheme == cc::CcScheme::kConc1
                   ? verify::HistoryChecker::Order::kTimestamp
                   : verify::HistoryChecker::Order::kCommitOrder;
  Status check = checker.Check(order, &final_totals);
  EXPECT_TRUE(check.ok()) << check.ToString();
  EXPECT_TRUE(cluster.AuditAll().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Conc1, SerializabilityTest,
    ::testing::Values(SerCase{11, cc::CcScheme::kConc1, 4, 0.05, 0.0},
                      SerCase{12, cc::CcScheme::kConc1, 2, 0.10, 0.0},
                      SerCase{13, cc::CcScheme::kConc1, 1, 0.00, 0.0},
                      SerCase{14, cc::CcScheme::kConc1, 4, 0.05, 0.2},
                      SerCase{15, cc::CcScheme::kConc1, 8, 0.02, 0.1},
                      SerCase{16, cc::CcScheme::kConc1, 2, 0.15, 0.3}));

INSTANTIATE_TEST_SUITE_P(
    Conc2, SerializabilityTest,
    ::testing::Values(SerCase{21, cc::CcScheme::kConc2, 4, 0.05, 0.0},
                      SerCase{22, cc::CcScheme::kConc2, 2, 0.10, 0.0},
                      SerCase{23, cc::CcScheme::kConc2, 1, 0.00, 0.0},
                      SerCase{24, cc::CcScheme::kConc2, 8, 0.05, 0.0}));

// Decrement safety: a committed bounded decrement may never drive the item
// total below zero at any prefix of the serial order — checked implicitly by
// Check(), plus here via direct observation that no fragment ever went
// negative during a hostile run.
TEST(DecrementSafetyTest, FragmentsNeverNegativeUnderChaos) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("pool", core::CountDomain::Instance(), 60);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 77;
  opts.link.loss_prob = 0.3;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  cluster.kernel().set_post_event_hook([&]() {
    for (uint32_t s = 0; s < 4; ++s) {
      if (cluster.site(SiteId(s)).IsUp()) {
        ASSERT_GE(cluster.site(SiteId(s)).LocalValue(item), 0);
      }
    }
  });

  workload::DvpAdapter adapter(&cluster);
  workload::WorkloadOptions w;
  w.arrivals_per_sec = 150;
  w.p_decrement = 0.8;  // constant pressure against the zero bound
  w.p_increment = 0.2;
  w.p_read = 0;
  w.amount_min = 1;
  w.amount_max = 9;
  w.seed = 777;
  std::vector<ItemId> items{item};
  workload::WorkloadDriver driver(&adapter, items, w);
  auto results = driver.Run(10'000'000);
  // Most demand must fail (the item only has 60 units) but never unsafely.
  EXPECT_GT(results.decided(), 500u);
  EXPECT_GE(cluster.TotalOf(item), 0);
  EXPECT_TRUE(cluster.AuditAll().ok());
}

}  // namespace
}  // namespace dvp
