// Recovery tests (§7): idempotent redo, checkpointing, independent restart,
// and the brutal one — a crash injected immediately after EVERY log append
// position in a fixed scenario, each followed by recovery and a full
// conservation + state audit.
#include <gtest/gtest.h>

#include "recovery/recovery.h"
#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

class RecoveryTest : public ::testing::Test {
 protected:
  void Build(SimTime checkpoint_interval = 0) {
    catalog_ = std::make_unique<core::Catalog>();
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), 400);
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 55;
    opts.site.checkpoint_interval_us = checkpoint_interval;
    cluster_ = std::make_unique<system::Cluster>(catalog_.get(), opts);
    cluster_->BootstrapEven();
  }

  TxnResult SubmitAndRun(SiteId at, const TxnSpec& spec) {
    TxnResult out;
    auto ok = cluster_->Submit(at, spec,
                               [&out](const TxnResult& r) { out = r; });
    EXPECT_TRUE(ok.ok());
    cluster_->RunFor(2'000'000);
    return out;
  }

  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(RecoveryTest, CommittedStateSurvivesCrash) {
  Build();
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 30)};
  ASSERT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kCommitted);
  cluster_->CrashSite(SiteId(0));
  cluster_->RecoverSite(SiteId(0));
  cluster_->RunFor(1'000'000);
  EXPECT_EQ(cluster_->site(SiteId(0)).LocalValue(item_), 70);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(RecoveryTest, RecoveryReportCountsWork) {
  Build();
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 1)};
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kCommitted);
  }
  cluster_->CrashSite(SiteId(0));
  recovery::RecoveryReport report;
  bool done = false;
  cluster_->site(SiteId(0)).Recover([&](const recovery::RecoveryReport& r) {
    report = r;
    done = true;
  });
  cluster_->RunFor(1'000'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(report.committed_txns, 5u);
  EXPECT_EQ(report.redo_writes, 5u);
  EXPECT_EQ(report.remote_messages_needed, 0u);
  EXPECT_GT(report.clock_counter, 0u);
}

TEST_F(RecoveryTest, CheckpointShortensRedo) {
  Build();
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 1)};
  for (int i = 0; i < 5; ++i) SubmitAndRun(SiteId(0), spec);
  cluster_->site(SiteId(0)).Checkpoint();
  for (int i = 0; i < 2; ++i) SubmitAndRun(SiteId(0), spec);

  cluster_->CrashSite(SiteId(0));
  recovery::RecoveryReport report;
  cluster_->site(SiteId(0)).Recover(
      [&](const recovery::RecoveryReport& r) { report = r; });
  cluster_->RunFor(1'000'000);
  // Only the two post-checkpoint transactions replay (2 commits + 2 applied
  // markers = 4 records).
  EXPECT_EQ(report.committed_txns, 2u);
  EXPECT_EQ(cluster_->site(SiteId(0)).LocalValue(item_), 93);
}

TEST_F(RecoveryTest, RecoveryDurationScalesWithSuffix) {
  Build();
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 1)};
  for (int i = 0; i < 10; ++i) SubmitAndRun(SiteId(0), spec);
  SimTime long_redo = recovery::RecoveryDuration(
      cluster_->storage(SiteId(0)), 5);
  cluster_->site(SiteId(0)).Checkpoint();
  SimTime short_redo = recovery::RecoveryDuration(
      cluster_->storage(SiteId(0)), 5);
  EXPECT_GT(long_redo, short_redo);
  EXPECT_EQ(short_redo, 0);
}

TEST_F(RecoveryTest, AllSitesFailOneRecoversAndWorksAlone) {
  Build();
  for (uint32_t s = 0; s < 4; ++s) cluster_->CrashSite(SiteId(s));
  cluster_->RecoverSite(SiteId(2));
  cluster_->RunFor(1'000'000);
  ASSERT_TRUE(cluster_->site(SiteId(2)).IsUp());
  // "even if all sites fail and subsequently one site recovers ... it can
  // begin doing some useful work" (§7).
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 10)};
  EXPECT_EQ(SubmitAndRun(SiteId(2), spec).outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->site(SiteId(2)).LocalValue(item_), 90);
}

TEST_F(RecoveryTest, PendingTxnAtCrashReportsSiteFailure) {
  Build();
  ASSERT_TRUE(
      cluster_->Partition({{SiteId(0)}, {SiteId(1), SiteId(2), SiteId(3)}})
          .ok());
  TxnSpec need;
  need.ops = {TxnOp::Decrement(item_, 150)};  // must gather; will hang
  TxnResult out;
  bool done = false;
  ASSERT_TRUE(cluster_
                  ->Submit(SiteId(0), need,
                           [&](const TxnResult& r) {
                             out = r;
                             done = true;
                           })
                  .ok());
  cluster_->RunFor(10'000);  // mid-gather
  cluster_->CrashSite(SiteId(0));
  ASSERT_TRUE(done);
  EXPECT_EQ(out.outcome, TxnOutcome::kAbortSiteFailure);
}

TEST_F(RecoveryTest, DoubleCrashDuringOperationIsSafe) {
  Build();
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 7)};
  ASSERT_EQ(SubmitAndRun(SiteId(1), spec).outcome, TxnOutcome::kCommitted);
  for (int round = 0; round < 3; ++round) {
    cluster_->CrashSite(SiteId(1));
    cluster_->RecoverSite(SiteId(1));
    cluster_->RunFor(1'000'000);
    EXPECT_EQ(cluster_->site(SiteId(1)).LocalValue(item_), 93);
  }
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

// ---- Crash at every log-append point -----------------------------------------
//
// The scenario: site 0 ships value to site 1 (Vm create/accept/ack records),
// commits two local transactions, and honors a request from site 2. A crash
// is injected right after the k-th log append at site 0, recovery runs, and
// afterwards: conservation must hold and the system must still make
// progress. k sweeps every append position the scenario produces.
class CrashPointTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointTest, RecoveryIsCorrectFromEveryCrashPoint) {
  const int crash_after = GetParam();

  core::Catalog catalog;
  ItemId item = catalog.AddItem("pool", CountDomain::Instance(), 400);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 99;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // Arm the crash: after the k-th append at site 0, schedule an immediate
  // crash (same virtual instant, next event).
  int appends = 0;
  bool crashed = false;
  cluster.storage(SiteId(0)).set_post_append_hook(
      [&](Lsn, const wal::LogRecord&) {
        if (++appends == crash_after && !crashed) {
          crashed = true;
          cluster.kernel().Schedule(0, [&cluster]() {
            cluster.CrashSite(SiteId(0));
          });
        }
      });

  // The scenario (all fire-and-forget; outcomes depend on the crash point).
  (void)cluster.site(SiteId(0)).SendValue(SiteId(1), item, 10);
  txn::TxnSpec d5;
  d5.ops = {txn::TxnOp::Decrement(item, 5)};
  (void)cluster.Submit(SiteId(0), d5, nullptr);
  txn::TxnSpec i3;
  i3.ops = {txn::TxnOp::Increment(item, 3)};
  (void)cluster.Submit(SiteId(0), i3, nullptr);
  txn::TxnSpec big;  // site 2 will request from everyone, incl. site 0
  big.ops = {txn::TxnOp::Decrement(item, 150)};
  (void)cluster.Submit(SiteId(2), big, nullptr);
  cluster.RunFor(3'000'000);

  // Whether or not the crash fired (large k may exceed the scenario's
  // appends), conservation must hold right now...
  ASSERT_TRUE(cluster.AuditAll().ok()) << "crash point " << crash_after;

  // ...and after recovery the site serves local work and the value total is
  // intact.
  if (crashed) {
    cluster.RecoverSite(SiteId(0));
    cluster.RunFor(2'000'000);
    ASSERT_TRUE(cluster.site(SiteId(0)).IsUp());
  }
  txn::TxnResult out;
  txn::TxnSpec probe;
  probe.ops = {txn::TxnOp::Increment(item, 1)};
  ASSERT_TRUE(cluster
                  .Submit(SiteId(0), probe,
                          [&out](const txn::TxnResult& r) { out = r; })
                  .ok());
  cluster.RunFor(2'000'000);
  EXPECT_EQ(out.outcome, txn::TxnOutcome::kCommitted)
      << "crash point " << crash_after;
  EXPECT_TRUE(cluster.AuditAll().ok()) << "crash point " << crash_after;
}

INSTANTIATE_TEST_SUITE_P(EveryAppend, CrashPointTest,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace dvp
