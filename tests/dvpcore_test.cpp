// Unit and property tests for the DvP core: domains (Π), partitionable
// operators and their algebraic laws (§4.1), catalog and fragment store.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "dvpcore/catalog.h"
#include "dvpcore/domain.h"
#include "dvpcore/operators.h"
#include "dvpcore/value_store.h"

namespace dvp::core {
namespace {

// ---- Domains ------------------------------------------------------------------

TEST(DomainTest, CountPiIsSummation) {
  std::vector<Value> frags{25, 25, 25, 25};
  EXPECT_EQ(CountDomain::Instance().Pi(frags), 100);
  EXPECT_EQ(CountDomain::Instance().Pi(std::span<const Value>{}), 0);
}

TEST(DomainTest, CountValidityIsNonNegative) {
  const auto& d = CountDomain::Instance();
  EXPECT_TRUE(d.ValidFragment(0));
  EXPECT_TRUE(d.ValidFragment(7));
  EXPECT_FALSE(d.ValidFragment(-1));
  EXPECT_EQ(d.Identity(), 0);
}

TEST(DomainTest, CountMaxShippable) {
  const auto& d = CountDomain::Instance();
  EXPECT_EQ(d.MaxShippable(10), 10);
  EXPECT_EQ(d.MaxShippable(0), 0);
}

TEST(DomainTest, MoneyMirrorsCount) {
  const auto& d = MoneyDomain::Instance();
  std::vector<Value> frags{10'00, 5'50};
  EXPECT_EQ(d.Pi(frags), 15'50);
  EXPECT_FALSE(d.ValidFragment(-1));
  EXPECT_EQ(d.name(), "money");
}

TEST(DomainTest, GaugeAllowsNegativeFragments) {
  const auto& d = GaugeDomain::Instance();
  std::vector<Value> frags{-10, 25};
  EXPECT_EQ(d.Pi(frags), 15);
  EXPECT_TRUE(d.ValidFragment(-100));
  EXPECT_EQ(d.MaxShippable(-5), -5);
}

// ---- Operators -------------------------------------------------------------------

TEST(OperatorTest, IncrementAlwaysApplies) {
  IncrementOp op(5);
  auto out = op.Apply(CountDomain::Instance(), 0);
  ASSERT_TRUE(out.applied());
  EXPECT_EQ(out.new_value, 5);
  EXPECT_EQ(out.delta, 5);
  EXPECT_EQ(op.ApplyToTotal(10), 15);
  EXPECT_EQ(op.delta(), 5);
}

TEST(OperatorTest, DecrementAppliesWhenCovered) {
  BoundedDecrementOp op(5);
  auto out = op.Apply(CountDomain::Instance(), 8);
  ASSERT_TRUE(out.applied());
  EXPECT_EQ(out.new_value, 3);
  EXPECT_EQ(out.delta, -5);
}

TEST(OperatorTest, DecrementExactToZeroApplies) {
  BoundedDecrementOp op(8);
  auto out = op.Apply(CountDomain::Instance(), 8);
  ASSERT_TRUE(out.applied());
  EXPECT_EQ(out.new_value, 0);
}

TEST(OperatorTest, DecrementShortfallIsReported) {
  BoundedDecrementOp op(10);
  auto out = op.Apply(CountDomain::Instance(), 3);
  ASSERT_TRUE(out.insufficient());
  EXPECT_EQ(out.shortfall, 7);
}

TEST(OperatorTest, DecrementOnGaugeNeverInsufficient) {
  BoundedDecrementOp op(10);
  auto out = op.Apply(GaugeDomain::Instance(), 3);
  ASSERT_TRUE(out.applied());
  EXPECT_EQ(out.new_value, -7);
}

TEST(OperatorTest, IneffectiveTotalApplicationIsNoOp) {
  BoundedDecrementOp op(10);
  EXPECT_EQ(op.ApplyToTotal(3), 3);  // "equivalent to a no-operation"
  EXPECT_EQ(op.ApplyToTotal(10), 0);
}

TEST(OperatorTest, Factories) {
  EXPECT_EQ(MakeIncrement(3)->delta(), 3);
  EXPECT_EQ(MakeDecrement(3)->delta(), -3);
  EXPECT_EQ(MakeDecrement(3)->name(), "decr(3)");
}

// The §4.1 law: an effective application to one fragment changes Π exactly
// as the operator applied to the whole value would.
class PartitionableLawTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionableLawTest, FragmentApplicationEqualsWholeApplication) {
  Rng rng(GetParam());
  const Domain& d = CountDomain::Instance();
  for (int trial = 0; trial < 200; ++trial) {
    // Random multiset of fragments.
    size_t n = 1 + rng.NextBounded(6);
    std::vector<Value> frags(n);
    for (auto& f : frags) f = rng.NextInt(0, 40);
    Value total = d.Pi(frags);

    Value amount = rng.NextInt(1, 20);
    size_t target = rng.NextBounded(n);
    std::unique_ptr<PartitionableOp> op =
        rng.NextBool(0.5) ? MakeIncrement(amount) : MakeDecrement(amount);

    ApplyOutcome out = op->Apply(d, frags[target]);
    if (out.applied()) {
      frags[target] = out.new_value;
      EXPECT_EQ(d.Pi(frags), op->ApplyToTotal(total))
          << "g(Π(b)) != Π(b') for " << op->name();
      for (Value f : frags) EXPECT_TRUE(d.ValidFragment(f));
    } else {
      // Not effectively applicable to this fragment: the multiset must be
      // unchanged (no partial effects).
      EXPECT_EQ(d.Pi(frags), total);
    }
  }
}

TEST_P(PartitionableLawTest, OperatorsCommuteAcrossFragments) {
  // g(h(d)) = h(g(d)) when applied to disjoint fragments (§4.1).
  Rng rng(GetParam() + 1000);
  const Domain& d = CountDomain::Instance();
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Value> frags{rng.NextInt(0, 30), rng.NextInt(0, 30)};
    Value a1 = rng.NextInt(1, 10), a2 = rng.NextInt(1, 10);
    auto g = rng.NextBool(0.5) ? MakeIncrement(a1) : MakeDecrement(a1);
    auto h = rng.NextBool(0.5) ? MakeIncrement(a2) : MakeDecrement(a2);

    // Order 1: g on fragment 0, then h on fragment 1.
    std::vector<Value> x = frags;
    auto og = g->Apply(d, x[0]);
    if (og.applied()) x[0] = og.new_value;
    auto oh = h->Apply(d, x[1]);
    if (oh.applied()) x[1] = oh.new_value;

    // Order 2: h first, then g.
    std::vector<Value> y = frags;
    auto oh2 = h->Apply(d, y[1]);
    if (oh2.applied()) y[1] = oh2.new_value;
    auto og2 = g->Apply(d, y[0]);
    if (og2.applied()) y[0] = og2.new_value;

    // Effectiveness on disjoint fragments is order-independent, so the
    // resulting multisets are identical.
    EXPECT_EQ(x, y);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionableLawTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Catalog ----------------------------------------------------------------------

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ItemId a = catalog.AddItem("seats", CountDomain::Instance(), 100);
  ItemId b = catalog.AddItem("cash", MoneyDomain::Instance(), 5000);
  EXPECT_EQ(catalog.num_items(), 2u);
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(catalog.info(a).name, "seats");
  EXPECT_EQ(catalog.info(b).initial_total, 5000);
  EXPECT_EQ(&catalog.domain(a), &CountDomain::Instance());
}

TEST(CatalogTest, FindByName) {
  Catalog catalog;
  catalog.AddItem("x", CountDomain::Instance(), 1);
  ItemId y = catalog.AddItem("y", CountDomain::Instance(), 2);
  auto found = catalog.Find("y");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), y);
  EXPECT_FALSE(catalog.Find("z").ok());
}

TEST(CatalogTest, AllItemsIsDense) {
  Catalog catalog;
  catalog.AddItem("a", CountDomain::Instance(), 1);
  catalog.AddItem("b", CountDomain::Instance(), 1);
  auto items = catalog.AllItems();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].value(), 0u);
  EXPECT_EQ(items[1].value(), 1u);
}

// ---- ValueStore ---------------------------------------------------------------------

TEST(ValueStoreTest, StartsAtIdentity) {
  Catalog catalog;
  ItemId a = catalog.AddItem("a", CountDomain::Instance(), 100);
  ValueStore store(&catalog);
  EXPECT_EQ(store.value(a), 0);
  EXPECT_EQ(store.ts(a), Timestamp::Zero());
  EXPECT_EQ(store.num_items(), 1u);
}

TEST(ValueStoreTest, InstallAndMutate) {
  Catalog catalog;
  ItemId a = catalog.AddItem("a", CountDomain::Instance(), 100);
  ValueStore store(&catalog);
  store.Install(a, 25, Timestamp(3, SiteId(1)));
  EXPECT_EQ(store.value(a), 25);
  EXPECT_EQ(store.ts(a).counter(), 3u);
  store.SetValue(a, 13);
  store.SetTs(a, Timestamp(9, SiteId(2)));
  EXPECT_EQ(store.fragment(a).value, 13);
  EXPECT_EQ(store.fragment(a).ts, Timestamp(9, SiteId(2)));
}

// Sparse store: untouched items cost nothing; absent reads as identity, and
// residency tracks what was actually touched, not the catalog width.
TEST(ValueStoreTest, ResidencyTracksTouchedItemsNotCatalogWidth) {
  Catalog catalog;
  for (int i = 0; i < 1000; ++i) {
    catalog.AddItem("i" + std::to_string(i), CountDomain::Instance(), 10);
  }
  ValueStore store(&catalog);
  EXPECT_EQ(store.resident_count(), 0u);
  EXPECT_EQ(store.num_items(), 1000u);
  EXPECT_EQ(store.value(ItemId(999)), 0);  // absent = domain identity
  store.SetValue(ItemId(7), 3);
  store.Install(ItemId(400), 5, Timestamp(1, SiteId(0)));
  EXPECT_EQ(store.fragment(ItemId(7)).value, 3);
  EXPECT_EQ(store.fragment(ItemId(400)).value, 5);
  // Residency stays O(touched): the two writes plus the one cached read.
  EXPECT_EQ(store.resident_count(), 3u);
  EXPECT_TRUE(store.resident_fragments().count(7));
  EXPECT_TRUE(store.resident_fragments().count(400));
}

// Regression: an out-of-catalog item used to index fragments_[item.value()]
// unchecked — UB in release builds. Reads now return the identity fragment.
TEST(ValueStoreTest, OutOfCatalogReadIsIdentityNotUb) {
#ifdef NDEBUG
  Catalog catalog;
  catalog.AddItem("only", CountDomain::Instance(), 100);
  ValueStore store(&catalog);
  ItemId beyond(17);  // way past the 1-item catalog
  EXPECT_EQ(store.value(beyond), 0);
  EXPECT_EQ(store.ts(beyond), Timestamp::Zero());
  store.SetValue(beyond, 5);  // ignored, must not crash or materialize
  EXPECT_EQ(store.resident_count(), 0u);
#else
  GTEST_SKIP() << "debug builds assert on out-of-catalog access";
#endif
}

TEST(ValueStoreTest, ObserverFiresOnWritesOnly) {
  Catalog catalog;
  ItemId a = catalog.AddItem("a", CountDomain::Instance(), 100);
  ItemId b = catalog.AddItem("b", CountDomain::Instance(), 100);
  ValueStore store(&catalog);
  std::vector<uint32_t> seen;
  store.set_observer([&seen](ItemId item) { seen.push_back(item.value()); });
  (void)store.value(a);                 // read: no event
  store.SetTs(a, Timestamp(1, SiteId(0)));  // ts-only: no event
  store.SetValue(a, 4);
  store.Install(b, 9, Timestamp(2, SiteId(1)));
  store.SetValue(a, 6);  // already resident: still an event (value changed)
  EXPECT_EQ(seen, (std::vector<uint32_t>{0, 1, 0}));
}

}  // namespace
}  // namespace dvp::core
