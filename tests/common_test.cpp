// Unit tests for src/common: Status/StatusOr, strong ids, Lamport
// timestamps, histograms and counters.
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"

namespace dvp {
namespace {

// ---- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Conflict("x").code(), StatusCode::kConflict);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("why").message(), "why");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::Timeout("").IsTimeout());
  EXPECT_TRUE(Status::Conflict("").IsConflict());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_FALSE(Status::OK().IsAborted());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Timeout("late").ToString(), "Timeout: late");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("a"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Timeout("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;  // shares state
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(a, b);
}

// ---- StatusOr ---------------------------------------------------------------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

namespace {
Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}
Status UseMacro(int x) {
  DVP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}
StatusOr<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}
Status UseAssign(int x, int* out) {
  DVP_ASSIGN_OR_RETURN(*out, Doubled(x));
  return Status::OK();
}
}  // namespace

TEST(StatusOrTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseMacro(1).ok());
  EXPECT_EQ(UseMacro(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssign(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssign(-1, &out).ok());
}

// ---- Strong ids -------------------------------------------------------------

TEST(StrongIdTest, DefaultIsInvalid) {
  SiteId s;
  EXPECT_FALSE(s.valid());
  EXPECT_EQ(s, SiteId::Invalid());
  EXPECT_EQ(s.ToString(), "<invalid>");
}

TEST(StrongIdTest, ValueRoundTrips) {
  ItemId i(7);
  EXPECT_TRUE(i.valid());
  EXPECT_EQ(i.value(), 7u);
  EXPECT_EQ(i.ToString(), "7");
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(TxnId(1), TxnId(2));
  EXPECT_EQ(TxnId(3), TxnId(3));
  EXPECT_NE(TxnId(3), TxnId(4));
}

TEST(StrongIdTest, Hashable) {
  std::unordered_map<ItemId, int> m;
  m[ItemId(1)] = 10;
  m[ItemId(2)] = 20;
  EXPECT_EQ(m.at(ItemId(1)), 10);
  EXPECT_EQ(m.at(ItemId(2)), 20);
}

// ---- Timestamp / LamportClock -------------------------------------------------

TEST(TimestampTest, PacksCounterAndSite) {
  Timestamp ts(123, SiteId(5));
  EXPECT_EQ(ts.counter(), 123u);
  EXPECT_EQ(ts.site(), SiteId(5));
  EXPECT_EQ(Timestamp::FromPacked(ts.packed()), ts);
}

TEST(TimestampTest, OrderIsCounterThenSite) {
  EXPECT_LT(Timestamp(1, SiteId(9)), Timestamp(2, SiteId(0)));
  EXPECT_LT(Timestamp(2, SiteId(0)), Timestamp(2, SiteId(1)));
  EXPECT_EQ(Timestamp::Zero(), Timestamp(0, SiteId(0)));
}

TEST(TimestampTest, UniqueAcrossSitesAtSameCounter) {
  EXPECT_NE(Timestamp(7, SiteId(1)), Timestamp(7, SiteId(2)));
}

TEST(LamportClockTest, NextIsMonotoneAndStampsSite) {
  LamportClock clock(SiteId(3));
  Timestamp a = clock.Next();
  Timestamp b = clock.Next();
  EXPECT_LT(a, b);
  EXPECT_EQ(a.site(), SiteId(3));
}

TEST(LamportClockTest, ObserveBumpsPastRemote) {
  LamportClock clock(SiteId(0));
  clock.Observe(Timestamp(100, SiteId(1)));
  EXPECT_GT(clock.Next(), Timestamp(100, SiteId(1)));
}

TEST(LamportClockTest, ObserveOlderIsNoOp) {
  LamportClock clock(SiteId(0));
  clock.Next();
  clock.Next();
  Timestamp before = clock.Peek();
  clock.Observe(Timestamp(1, SiteId(1)));
  EXPECT_EQ(clock.Peek(), before);
}

TEST(LamportClockTest, ResetThenObserveRepairs) {
  LamportClock clock(SiteId(0));
  for (int i = 0; i < 50; ++i) clock.Next();
  clock.Reset(10);  // stale restore after a crash
  EXPECT_EQ(clock.Peek().counter(), 10u);
  clock.Observe(Timestamp(49, SiteId(2)));
  EXPECT_GE(clock.Next().counter(), 50u);
}

// ---- Histogram ----------------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 3.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.Add(0.0);
  h.Add(10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 10.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(HistogramTest, StdDevOfConstantIsZero) {
  Histogram h;
  h.Add(4.0);
  h.Add(4.0);
  h.Add(4.0);
  EXPECT_DOUBLE_EQ(h.StdDev(), 0.0);
}

TEST(HistogramTest, AddAfterPercentileStaysCorrect) {
  Histogram h;
  h.Add(5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 5.0);
  h.Add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Median(), 3.0);
}

// ---- CounterSet -----------------------------------------------------------------

TEST(CounterSetTest, IncAndGet) {
  CounterSet c;
  EXPECT_EQ(c.Get("x"), 0u);
  c.Inc("x");
  c.Inc("x", 4);
  EXPECT_EQ(c.Get("x"), 5u);
}

TEST(CounterSetTest, MergeAdds) {
  CounterSet a, b;
  a.Inc("x", 2);
  b.Inc("x", 3);
  b.Inc("y", 1);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 5u);
  EXPECT_EQ(a.Get("y"), 1u);
}

TEST(CounterSetTest, ToStringIsSortedKeyValue) {
  CounterSet c;
  c.Inc("b", 2);
  c.Inc("a", 1);
  EXPECT_EQ(c.ToString(), "a=1 b=2");
}

}  // namespace
}  // namespace dvp
