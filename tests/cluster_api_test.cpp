// Public-API surface tests for the Cluster facade: bootstrap validation,
// allocation helpers, Conc2 configuration, metrics aggregation, and the
// paired-items pattern for capacity-bounded counters.
#include <gtest/gtest.h>

#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using system::Cluster;
using system::ClusterOptions;
using system::SplitEven;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

TEST(SplitEvenTest, DistributesRemainderToLowSites) {
  EXPECT_EQ(SplitEven(10, 4), (std::vector<core::Value>{3, 3, 2, 2}));
  EXPECT_EQ(SplitEven(8, 4), (std::vector<core::Value>{2, 2, 2, 2}));
  EXPECT_EQ(SplitEven(0, 3), (std::vector<core::Value>{0, 0, 0}));
  EXPECT_EQ(SplitEven(2, 5), (std::vector<core::Value>{1, 1, 0, 0, 0}));
}

TEST(ClusterBootstrapTest, RejectsWrongSizeAllocation) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("x", CountDomain::Instance(), 100);
  ClusterOptions opts;
  opts.num_sites = 4;
  Cluster cluster(&catalog, opts);
  std::map<ItemId, std::vector<core::Value>> alloc;
  alloc[item] = {50, 50};  // only 2 entries for 4 sites
  EXPECT_FALSE(cluster.Bootstrap(alloc).ok());
}

TEST(ClusterBootstrapTest, RejectsWrongSum) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("x", CountDomain::Instance(), 100);
  ClusterOptions opts;
  opts.num_sites = 2;
  Cluster cluster(&catalog, opts);
  std::map<ItemId, std::vector<core::Value>> alloc;
  alloc[item] = {60, 60};  // sums to 120, not 100
  EXPECT_FALSE(cluster.Bootstrap(alloc).ok());
}

TEST(ClusterBootstrapTest, RejectsInvalidFragment) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("x", CountDomain::Instance(), 100);
  ClusterOptions opts;
  opts.num_sites = 2;
  Cluster cluster(&catalog, opts);
  std::map<ItemId, std::vector<core::Value>> alloc;
  alloc[item] = {150, -50};  // negative count fragment
  EXPECT_FALSE(cluster.Bootstrap(alloc).ok());
}

TEST(ClusterBootstrapTest, RejectsDoubleBootstrap) {
  core::Catalog catalog;
  catalog.AddItem("x", CountDomain::Instance(), 100);
  ClusterOptions opts;
  opts.num_sites = 2;
  Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  EXPECT_FALSE(cluster.Bootstrap({}).ok());
}

TEST(ClusterOptionsTest, UseConc2ForcesSynchronousLinks) {
  ClusterOptions opts;
  opts.link.loss_prob = 0.5;
  opts.UseConc2();
  EXPECT_EQ(opts.site.txn.scheme, cc::CcScheme::kConc2);
  EXPECT_EQ(opts.link.loss_prob, 0.0);
  EXPECT_EQ(opts.link.jitter_mean_us, 0.0);
}

TEST(ClusterRunTest, RunUntilQuiescentStopsAtDrainOrDeadline) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("x", CountDomain::Instance(), 100);
  ClusterOptions opts;
  opts.num_sites = 2;
  Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  // One transfer: a handful of events, all well inside the deadline.
  ASSERT_TRUE(cluster.site(SiteId(0)).SendValue(SiteId(1), item, 5).ok());
  cluster.RunUntilQuiescent(10'000'000);
  EXPECT_LT(cluster.Now(), 10'000'000);  // drained early
  EXPECT_EQ(cluster.site(SiteId(1)).LocalValue(item), 55);
  // With nothing pending, time does not run away past the deadline.
  SimTime before = cluster.Now();
  cluster.RunUntilQuiescent(1'000);
  EXPECT_LE(cluster.Now(), before + 1'000);
}

TEST(ClusterMetricsTest, AggregateIncludesNetworkStats) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("x", CountDomain::Instance(), 100);
  ClusterOptions opts;
  opts.num_sites = 2;
  Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  ASSERT_TRUE(cluster.site(SiteId(0)).SendValue(SiteId(1), item, 5).ok());
  cluster.RunFor(1'000'000);
  CounterSet counters = cluster.AggregateCounters();
  EXPECT_GE(counters.Get("net.sent"), 2u);  // transfer + ack
  EXPECT_EQ(counters.Get("vm.created"), 1u);
  EXPECT_EQ(counters.Get("vm.accepted"), 1u);
}

// The paired-items idiom: a capacity-bounded counter (used, free) with
// used + free = capacity. "Increment used" is expressed as the atomic pair
// {Decrement(free), Increment(used)}, so the *upper* bound is enforced by
// the same bounded-decrement machinery — symmetric escrow, no new domain
// code. (O'Neil's method bounds both ends; so does this pattern.)
class PairedCapacityTest : public ::testing::Test {
 protected:
  PairedCapacityTest() {
    used_ = catalog_.AddItem("conn.used", CountDomain::Instance(), 0);
    free_ = catalog_.AddItem("conn.free", CountDomain::Instance(), 50);
    ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 3;
    cluster_ = std::make_unique<Cluster>(&catalog_, opts);
    cluster_->BootstrapEven();
  }

  TxnResult Acquire(SiteId at, core::Value n) {
    TxnSpec spec;
    spec.ops = {TxnOp::Decrement(free_, n), TxnOp::Increment(used_, n)};
    return Run(at, spec);
  }
  TxnResult Release(SiteId at, core::Value n) {
    TxnSpec spec;
    spec.ops = {TxnOp::Decrement(used_, n), TxnOp::Increment(free_, n)};
    return Run(at, spec);
  }
  TxnResult Run(SiteId at, const TxnSpec& spec) {
    TxnResult out;
    (void)cluster_->Submit(at, spec,
                           [&out](const TxnResult& r) { out = r; });
    cluster_->RunFor(2'000'000);
    return out;
  }

  core::Catalog catalog_;
  ItemId used_, free_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(PairedCapacityTest, AcquireWithinCapacitySucceeds) {
  EXPECT_EQ(Acquire(SiteId(0), 10).outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->TotalOf(used_), 10);
  EXPECT_EQ(cluster_->TotalOf(free_), 40);
  // The invariant used + free = 50 holds by conservation of both items.
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(PairedCapacityTest, CapacityCeilingIsEnforced) {
  ASSERT_EQ(Acquire(SiteId(0), 30).outcome, TxnOutcome::kCommitted);
  // 21 more would exceed capacity 50: free cannot cover it anywhere.
  EXPECT_EQ(Acquire(SiteId(1), 21).outcome, TxnOutcome::kAbortTimeout);
  EXPECT_EQ(cluster_->TotalOf(used_), 30);
  EXPECT_EQ(Acquire(SiteId(1), 20).outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->TotalOf(used_), 50);
  EXPECT_EQ(cluster_->TotalOf(free_), 0);
}

TEST_F(PairedCapacityTest, ReleaseRestoresHeadroom) {
  ASSERT_EQ(Acquire(SiteId(2), 50).outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(Release(SiteId(3), 15).outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->TotalOf(used_), 35);
  EXPECT_EQ(cluster_->TotalOf(free_), 15);
  EXPECT_EQ(Acquire(SiteId(0), 15).outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(PairedCapacityTest, ConcurrentAcquisitionNeverOversubscribes) {
  // Fire acquisitions from every site simultaneously; total admitted can
  // never exceed capacity even with redistribution racing.
  int committed_units = 0;
  for (int round = 0; round < 6; ++round) {
    for (uint32_t s = 0; s < 4; ++s) {
      TxnSpec spec;
      spec.ops = {TxnOp::Decrement(free_, 4), TxnOp::Increment(used_, 4)};
      (void)cluster_->Submit(SiteId(s), spec,
                             [&](const TxnResult& r) {
                               if (r.committed()) committed_units += 4;
                             });
    }
    cluster_->RunFor(300'000);
  }
  cluster_->RunFor(3'000'000);
  EXPECT_LE(committed_units, 50);
  EXPECT_EQ(cluster_->TotalOf(used_), committed_units);
  EXPECT_EQ(cluster_->TotalOf(free_), 50 - committed_units);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

}  // namespace
}  // namespace dvp
