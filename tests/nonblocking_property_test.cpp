// The non-blocking property (§2, §5), tested adversarially: under flapping
// random partitions, crashes of remote sites, and total message loss, every
// transaction submitted at an up site reaches its decision within
// timeout + ε of local work — no decision ever depends on failure detection
// or on another site's progress.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnSpec;

constexpr SimTime kTimeout = 200'000;
// Decisions happen at commit, at the timeout, or at a crash; the bound is
// the timeout plus the local compute window (zero here).
constexpr SimTime kBound = kTimeout + 1'000;

struct NbCase {
  uint64_t seed;
  double loss;
  SimTime flap_period_us;  // partition reshuffle period (0 = none)
  bool crash_remotes;
};

class NonBlockingTest : public ::testing::TestWithParam<NbCase> {};

TEST_P(NonBlockingTest, EveryDecisionWithinBound) {
  const NbCase& c = GetParam();

  core::Catalog catalog;
  ItemId item = catalog.AddItem("pool", CountDomain::Instance(), 200);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = c.seed;
  opts.link.loss_prob = c.loss;
  opts.site.txn.timeout_us = kTimeout;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  Rng rng(c.seed * 7 + 3);

  // Adversarial partition flapping. Declared at function scope: the
  // self-rescheduling closure must outlive every RunFor below.
  std::function<void()> flap;
  if (c.flap_period_us > 0) {
    flap = [&]() {
      std::vector<SiteId> a, b;
      do {
        a.clear();
        b.clear();
        for (uint32_t s = 0; s < 4; ++s) {
          (rng.NextBool(0.5) ? a : b).push_back(SiteId(s));
        }
      } while (a.empty() || b.empty());
      (void)cluster.Partition({a, b});
      cluster.kernel().Schedule(c.flap_period_us, flap);
    };
    cluster.kernel().Schedule(c.flap_period_us, flap);
  }
  // Crash every remote site mid-run; site 0 must still decide everything.
  if (c.crash_remotes) {
    cluster.kernel().ScheduleAt(300'000, [&cluster]() {
      for (uint32_t s = 1; s < 4; ++s) cluster.CrashSite(SiteId(s));
    });
  }

  // Stream of demanding transactions at site 0 (many force gathering).
  uint64_t decided = 0, submitted = 0;
  SimTime max_latency = 0;
  for (int i = 0; i < 60; ++i) {
    TxnSpec spec;
    core::Value amount = rng.NextInt(1, 80);  // often exceeds the fragment
    spec.ops = {rng.NextBool(0.7) ? TxnOp::Decrement(item, amount)
                                  : TxnOp::Increment(item, amount)};
    ++submitted;
    auto ok = cluster.Submit(SiteId(0), spec,
                             [&](const txn::TxnResult& r) {
                               ++decided;
                               max_latency = std::max(max_latency,
                                                      r.latency_us);
                             });
    ASSERT_TRUE(ok.ok());
    cluster.RunFor(rng.NextInt(5'000, 50'000));
  }
  cluster.RunFor(kBound + 100'000);  // every pending timeout has fired

  EXPECT_EQ(decided, submitted) << "a transaction never decided: blocking!";
  EXPECT_LE(max_latency, kBound)
      << "a decision exceeded the §5 bound of timeout + local work";
  EXPECT_TRUE(cluster.AuditAll().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Adversarial, NonBlockingTest,
    ::testing::Values(NbCase{1, 0.0, 0, false},        // healthy
                      NbCase{2, 0.5, 0, false},        // half the packets die
                      NbCase{3, 1.0, 0, false},        // total silence
                      NbCase{4, 0.0, 50'000, false},   // fast flapping
                      NbCase{5, 0.2, 120'000, false},  // lossy + flapping
                      NbCase{6, 0.0, 0, true},         // all remotes crash
                      NbCase{7, 0.3, 80'000, true}));  // everything at once

}  // namespace
}  // namespace dvp
