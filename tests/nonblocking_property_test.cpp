// The non-blocking property (§2, §5), tested adversarially through the chaos
// harness: under fault plans mixing partitions, remote crashes, total message
// loss and timeout skew, every transaction submitted at an up site reaches
// its decision within the (skewed) timeout + ε of local work — no decision
// ever depends on failure detection or on another site's progress.
//
// Two layers:
//  * Pinned — the pre-chaos fixed scenarios, re-expressed as ChaosCases, so
//    the exact adversaries this suite has always run stay covered.
//  * Swarm — seeded FaultPlan generation (site 0 never crashes; it is the
//    submitter whose liveness the property is about).
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"

namespace dvp {
namespace {

// Site 0 submits everything; the harness itself asserts decided == submitted
// and max_latency <= skewed timeout + jitter + ε.
chaos::WorkloadSpec NbWorkload(uint32_t loss_permille) {
  chaos::WorkloadSpec w;
  w.sites = 4;
  w.items = 1;
  w.total = 200;
  w.txns = 60;
  w.gap_us = 27'000;
  w.submit_site = 0;
  w.redist_permille = 0;
  w.max_amount = 80;  // often exceeds the fragment: many gather rounds
  w.timeout_us = 200'000;
  w.loss_permille = loss_permille;
  return w;
}

struct NbCase {
  const char* name;
  uint32_t loss_permille;
  SimTime flap_period_us;  // partition reshuffle period (0 = none)
  bool crash_remotes;
};

class NonBlockingTest : public ::testing::TestWithParam<NbCase> {};

TEST_P(NonBlockingTest, EveryDecisionWithinBound) {
  const NbCase& p = GetParam();

  chaos::ChaosCase c;
  c.seed = 11;
  c.workload = NbWorkload(p.loss_permille);
  if (p.flap_period_us > 0) {
    // Reshuffling partitions for the whole active window.
    Rng rng(13);
    for (SimTime t = p.flap_period_us; t < 2'000'000; t += p.flap_period_us) {
      uint32_t mask;
      do {
        mask = static_cast<uint32_t>(rng.NextBounded(16));
      } while (mask == 0 || mask == 15);
      c.plan.events.push_back({t, chaos::FaultKind::kPartition, mask, 0});
    }
  }
  if (p.crash_remotes) {
    for (uint32_t s = 1; s < 4; ++s) {
      c.plan.events.push_back({300'000, chaos::FaultKind::kCrash, s, 0});
    }
  }

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << p.name << ": " << r.violation << "\n"
                    << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
  EXPECT_LE(r.max_latency_us, r.latency_bound_us);
  EXPECT_GT(r.submitted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, NonBlockingTest,
    ::testing::Values(NbCase{"healthy", 0, 0, false},
                      NbCase{"half_loss", 500, 0, false},
                      NbCase{"total_silence", 1000, 0, false},
                      NbCase{"fast_flapping", 0, 50'000, false},
                      NbCase{"lossy_flapping", 200, 120'000, false},
                      NbCase{"remotes_crash", 0, 0, true},
                      NbCase{"everything", 300, 80'000, true}),
    [](const auto& info) { return info.param.name; });

class NonBlockingSwarmTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NonBlockingSwarmTest, GeneratedPlanRespectsBound) {
  uint64_t seed = GetParam();

  chaos::ChaosCase c;
  c.seed = seed;
  c.workload = NbWorkload(0);
  c.perturb_seed = seed * 17 + 5;  // also search interleavings
  c.max_jitter_us = 200;

  chaos::PlanSpec spec;
  spec.num_sites = 4;
  spec.crashable_mask = 0b1110;  // never the submitter
  spec.horizon_us = 1'800'000;
  spec.max_events = 16;
  c.plan = chaos::GeneratePlan(seed, spec);

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.violation << "\n"
                    << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
}

INSTANTIATE_TEST_SUITE_P(Swarm, NonBlockingSwarmTest,
                         ::testing::Range(uint64_t{1}, uint64_t{8}));

}  // namespace
}  // namespace dvp
